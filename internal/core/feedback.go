package core

import (
	"fmt"

	"lakenav/internal/lake"
	"lakenav/vector"
)

// Feedback implements the paper's Sec 2.4 remark: "we can apply
// existing incremental model estimation techniques to maintain and
// update the transition probabilities as behavior logs and workload
// patterns become available through the use of an organization by
// users."
//
// Observed transitions are accumulated per edge and blended with the
// similarity-based model through Dirichlet smoothing: with prior weight
// α, the blended transition probability from s to child c under topic X
// is
//
//	P̂(c|s) = (α·P_model(c|s,X) + n(s→c)) / (α + n(s→·))
//
// so an unused organization behaves exactly like the model (n = 0) and
// heavily used edges converge to their empirical frequencies. Decay
// implements exponential forgetting for non-stationary workloads.
type Feedback struct {
	org   *Org
	prior float64
	// counts[parent][child] is the observed transition mass.
	counts map[StateID]map[StateID]float64
	// totals[parent] caches the row sums.
	totals map[StateID]float64
}

// NewFeedback returns an empty feedback accumulator over org. prior is
// the Dirichlet pseudo-count α; it must be positive (larger values make
// observations move the distribution more slowly).
func NewFeedback(org *Org, prior float64) (*Feedback, error) {
	if prior <= 0 {
		return nil, fmt.Errorf("core: feedback prior must be positive, got %v", prior)
	}
	return &Feedback{
		org:    org,
		prior:  prior,
		counts: make(map[StateID]map[StateID]float64),
		totals: make(map[StateID]float64),
	}, nil
}

// Observe records one observed transition from parent to child. It
// returns an error when the edge does not exist in the organization.
func (f *Feedback) Observe(parent, child StateID) error {
	if !f.org.hasEdge(parent, child) {
		return fmt.Errorf("core: feedback on nonexistent edge %d→%d", parent, child)
	}
	row := f.counts[parent]
	if row == nil {
		row = make(map[StateID]float64)
		f.counts[parent] = row
	}
	row[child]++
	f.totals[parent]++
	return nil
}

// ObservePath records every transition along a navigation path (as
// returned by Org.Walk).
func (f *Feedback) ObservePath(path []StateID) error {
	for i := 1; i < len(path); i++ {
		if err := f.Observe(path[i-1], path[i]); err != nil {
			return err
		}
	}
	return nil
}

// Observations returns the total observed transition mass.
func (f *Feedback) Observations() float64 {
	var sum float64
	for _, t := range f.totals {
		sum += t
	}
	return sum
}

// Decay multiplies every count by factor in (0, 1], forgetting old
// behaviour exponentially. Rows that decay below a small epsilon are
// dropped. A factor outside (0, 1] is rejected with an error — servers
// feed this knob from configuration and request input, so misuse must
// not crash the process.
func (f *Feedback) Decay(factor float64) error {
	if factor <= 0 || factor > 1 {
		return fmt.Errorf("core: decay factor %v outside (0, 1]", factor)
	}
	const eps = 1e-9
	for parent, row := range f.counts {
		var total float64
		for child := range row {
			row[child] *= factor
			if row[child] < eps {
				delete(row, child)
				continue
			}
			total += row[child]
		}
		if len(row) == 0 {
			delete(f.counts, parent)
			delete(f.totals, parent)
			continue
		}
		f.totals[parent] = total
	}
	return nil
}

// TransitionProbs returns the blended transition distribution from s
// under topic, parallel to s.Children.
func (f *Feedback) TransitionProbs(s StateID, topic vector.Vector) []float64 {
	model := f.org.childTransitions(s, topic)
	row := f.counts[s]
	if len(row) == 0 {
		return model
	}
	total := f.totals[s]
	denom := f.prior + total
	out := make([]float64, len(model))
	for i, c := range f.org.States[s].Children {
		out[i] = (f.prior*model[i] + row[c]) / denom
	}
	return out
}

// ReachProbs computes reach probabilities like Org.ReachProbs but under
// the blended transition model, so organizations can be re-evaluated
// against observed behaviour.
func (f *Feedback) ReachProbs(topic vector.Vector) []float64 {
	o := f.org
	reach := make([]float64, len(o.States))
	reach[o.Root] = 1
	for _, id := range o.Topo() {
		s := o.States[id]
		if s.Kind == KindLeaf || s.Kind == KindTag || reach[id] == 0 {
			continue
		}
		probs := f.TransitionProbs(id, topic)
		for i, c := range s.Children {
			if o.States[c].Kind != KindLeaf {
				reach[c] += reach[id] * probs[i]
			}
		}
	}
	return reach
}

// LeafProb mirrors Org.LeafProb under the blended transition model.
func (f *Feedback) LeafProb(a lake.AttrID, topic vector.Vector, reach []float64) float64 {
	o := f.org
	leaf, ok := o.leafOf[a]
	if !ok {
		return 0
	}
	var p float64
	for _, t := range o.States[leaf].Parents {
		if reach[t] == 0 {
			continue
		}
		probs := f.TransitionProbs(t, topic)
		for i, c := range o.States[t].Children {
			if c == leaf {
				p += reach[t] * probs[i]
				break
			}
		}
	}
	return p
}

// Effectiveness evaluates Eq 6 under the blended model: what the
// organization's effectiveness looks like for the user population whose
// behaviour was observed. Comparing this with Org.Effectiveness shows
// whether real usage routes better or worse than the similarity model
// assumes — the signal that would drive workload-aware re-optimization.
func (f *Feedback) Effectiveness() float64 {
	o := f.org
	if len(o.Lake.Tables) == 0 {
		return 0
	}
	idx := o.attrIndex()
	probs := make([]float64, len(o.attrs))
	for i, a := range o.attrs {
		topic := o.States[o.leafOf[a]].topic
		probs[i] = f.LeafProb(a, topic, f.ReachProbs(topic))
	}
	var sum float64
	for _, t := range o.Lake.Tables {
		fail := 1.0
		for _, a := range t.Attrs {
			if i, ok := idx[a]; ok {
				fail *= 1 - probs[i]
			}
		}
		sum += 1 - fail
	}
	return sum / float64(len(o.Lake.Tables))
}
