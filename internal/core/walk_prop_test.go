package core

import (
	"math"
	"math/rand"
	"testing"
)

// walkTestOrg builds the shared fixture organization for the Walk
// property tests.
func walkTestOrg(t *testing.T) *Org {
	t.Helper()
	o, err := NewClustered(testLake(t), BuildConfig{})
	if err != nil {
		t.Fatal(err)
	}
	return o
}

// A nil-rng Walk is the deterministic "always take the most likely
// child" session: at every step the chosen child must be the argmax of
// TransitionProbs at the state just left, first index winning ties
// (the same tie-break Walk implements).
func TestWalkNilRngFollowsArgmax(t *testing.T) {
	o := walkTestOrg(t)
	for _, a := range o.Attrs() {
		topic := o.States[o.leafOf[a]].topic
		path := o.Walk(topic, nil)
		if len(path) < 2 {
			t.Fatalf("attr %d: walk %v too short", a, path)
		}
		if path[0] != o.Root {
			t.Errorf("attr %d: walk starts at %d, not root %d", a, path[0], o.Root)
		}
		last := o.States[path[len(path)-1]]
		if len(last.Children) != 0 {
			t.Errorf("attr %d: walk ends at %d which still has children", a, last.ID)
		}
		for i := 0; i+1 < len(path); i++ {
			s := o.States[path[i]]
			probs := o.TransitionProbs(path[i], topic)
			best, bp := 0, -1.0
			for j, p := range probs {
				if p > bp {
					bp, best = p, j
				}
			}
			if got, want := path[i+1], s.Children[best]; got != want {
				t.Fatalf("attr %d step %d: walk took child %d, argmax is %d (probs %v)",
					a, i, got, want, probs)
			}
		}
	}
}

// A seeded sampled Walk must draw children with the model's transition
// probabilities: over many sessions, the observed child frequencies at
// every sufficiently visited state converge to TransitionProbs within a
// few standard errors.
func TestWalkSampledFrequenciesConverge(t *testing.T) {
	o := walkTestOrg(t)
	topic := o.States[o.leafOf[o.Attrs()[0]]].topic
	rng := rand.New(rand.NewSource(42))

	const sessions = 20000
	// visits[s] counts departures from s; taken[s][i] counts times the
	// i-th child was chosen.
	visits := make(map[StateID]int)
	taken := make(map[StateID][]int)
	for n := 0; n < sessions; n++ {
		path := o.Walk(topic, rng)
		for i := 0; i+1 < len(path); i++ {
			s := o.States[path[i]]
			if taken[path[i]] == nil {
				taken[path[i]] = make([]int, len(s.Children))
			}
			visits[path[i]]++
			for j, c := range s.Children {
				if c == path[i+1] {
					taken[path[i]][j]++
					break
				}
			}
		}
	}

	checked := 0
	for id, n := range visits {
		if n < 1000 {
			continue // too few samples for a tight bound
		}
		probs := o.TransitionProbs(id, topic)
		for j, p := range probs {
			got := float64(taken[id][j]) / float64(n)
			// Four standard errors plus a small absolute floor: a ~1 in
			// 16k flake rate per bucket, deterministic here anyway since
			// the rng is seeded.
			tol := 4*math.Sqrt(p*(1-p)/float64(n)) + 1e-3
			if math.Abs(got-p) > tol {
				t.Errorf("state %d child %d: frequency %.4f, want %.4f ± %.4f (n=%d)",
					id, j, got, p, tol, n)
			}
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no state accumulated enough visits to check convergence")
	}
}
