package core

import (
	"fmt"
	"io"
	"sort"
)

// RenderOptions controls WriteTree output.
type RenderOptions struct {
	// MaxDepth stops rendering below this level (0 = no limit).
	MaxDepth int
	// MaxChildren truncates long child lists per state (0 = no limit);
	// tag states with hundreds of leaves render as a summary line.
	MaxChildren int
	// ShowLeaves includes leaf states; off by default rendering stops at
	// tag states with an attribute-count summary.
	ShowLeaves bool
}

// WriteTree renders the organization as an indented outline, the format
// cmd/lakenav prints. DAG nodes reachable through several parents are
// rendered at their first (shortest-path) position and referenced with
// "↩" afterwards, so the output stays linear in the number of states.
func (o *Org) WriteTree(w io.Writer, opts RenderOptions) error {
	seen := make(map[StateID]bool)
	return o.renderState(w, o.Root, 0, opts, seen)
}

func (o *Org) renderState(w io.Writer, id StateID, depth int, opts RenderOptions, seen map[StateID]bool) error {
	s := o.States[id]
	indent := make([]byte, 2*depth)
	for i := range indent {
		indent[i] = ' '
	}
	if seen[id] {
		_, err := fmt.Fprintf(w, "%s↩ %s\n", indent, o.Label(id))
		return err
	}
	seen[id] = true

	switch s.Kind {
	case KindLeaf:
		_, err := fmt.Fprintf(w, "%s• %s\n", indent, o.Label(id))
		return err
	case KindTag:
		if !opts.ShowLeaves {
			_, err := fmt.Fprintf(w, "%s%s (%d attributes)\n", indent, o.Label(id), s.DomainSize())
			return err
		}
		if _, err := fmt.Fprintf(w, "%s%s\n", indent, o.Label(id)); err != nil {
			return err
		}
	default:
		if _, err := fmt.Fprintf(w, "%s%s (%d attributes)\n", indent, o.Label(id), s.DomainSize()); err != nil {
			return err
		}
	}
	if opts.MaxDepth > 0 && depth+1 >= opts.MaxDepth {
		return nil
	}

	// Children in descending domain-size order for readable output.
	children := append([]StateID(nil), s.Children...)
	sort.Slice(children, func(i, j int) bool {
		di, dj := o.States[children[i]].DomainSize(), o.States[children[j]].DomainSize()
		if di != dj {
			return di > dj
		}
		return children[i] < children[j]
	})
	limit := len(children)
	if opts.MaxChildren > 0 && limit > opts.MaxChildren {
		limit = opts.MaxChildren
	}
	for _, c := range children[:limit] {
		if err := o.renderState(w, c, depth+1, opts, seen); err != nil {
			return err
		}
	}
	if limit < len(children) {
		pad := make([]byte, 2*(depth+1))
		for i := range pad {
			pad[i] = ' '
		}
		if _, err := fmt.Fprintf(w, "%s… %d more\n", pad, len(children)-limit); err != nil {
			return err
		}
	}
	return nil
}
