package core

import (
	"bytes"
	"testing"
)

// binOrgSeedCorpus returns a valid full-flavor org container plus a
// few systematically damaged variants, so the fuzzer starts from deep
// coverage instead of rediscovering the header.
func binOrgSeedCorpus(f *testing.F) [][]byte {
	l := testLake(f)
	built, err := NewClustered(l, BuildConfig{})
	if err != nil {
		f.Fatal(err)
	}
	o, err := Import(l, built.Export())
	if err != nil {
		f.Fatal(err)
	}
	valid, err := EncodeBinOrg(o)
	if err != nil {
		f.Fatal(err)
	}
	seeds := [][]byte{valid, nil}
	for _, off := range []int{0, 8, 16, 24, 40, len(valid) / 2, len(valid) - 1} {
		mut := bytes.Clone(valid)
		mut[off] ^= 0xff
		seeds = append(seeds, mut)
	}
	for _, k := range []int{1, 8, 31, 32, 56, len(valid) - 8} {
		seeds = append(seeds, bytes.Clone(valid[:k]))
	}
	return seeds
}

// FuzzReadBinOrg drives arbitrary bytes through the binary org decoder
// over a real lake. The contract matches FuzzReadOrg: reject with an
// error or return an organization that passes Validate — never panic,
// and never allocate beyond what the input's section sizes justify.
func FuzzReadBinOrg(f *testing.F) {
	for _, s := range binOrgSeedCorpus(f) {
		f.Add(s)
	}
	l := testLake(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		org, err := DecodeBinOrg(l, data)
		if err != nil {
			return
		}
		if verr := org.Validate(); verr != nil {
			t.Fatalf("DecodeBinOrg accepted an organization that fails Validate: %v", verr)
		}
	})
}

// FuzzReadBinCheckpoint drives arbitrary bytes through the binary
// checkpoint decoder: truncations, flipped CRC bytes, and bad section
// offsets must all surface as errors, and anything accepted must pass
// the same validate() gate the resume path trusts.
func FuzzReadBinCheckpoint(f *testing.F) {
	l := testLake(f)
	o, err := NewClustered(l, BuildConfig{})
	if err != nil {
		f.Fatal(err)
	}
	ck := &Checkpoint{
		Version:    checkpointVersion,
		Config:     SearchConfig{MaxIterations: 10, Window: 5, Seed: 1},
		Iterations: 4, Accepted: 3, Rejected: 1,
		TagGroup: []string{"fishery"},
		Current:  o.Export(),
		Best:     o.Export(),
		binary:   true,
	}
	w, err := encodeBinCheckpoint(ck)
	if err != nil {
		f.Fatal(err)
	}
	valid, err := w.Bytes()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add([]byte(nil))
	for _, off := range []int{0, 8, 16, 24, 40, len(valid) / 2, len(valid) - 1} {
		mut := bytes.Clone(valid)
		mut[off] ^= 0xff
		f.Add(mut)
	}
	for _, k := range []int{1, 31, 32, 64, len(valid) - 8} {
		f.Add(bytes.Clone(valid[:k]))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		ck, err := DecodeBinCheckpoint(data)
		if err != nil {
			return
		}
		if verr := ck.validate(); verr != nil {
			t.Fatalf("DecodeBinCheckpoint accepted a checkpoint that fails validate: %v", verr)
		}
	})
}
