package core

import (
	"fmt"
	"math/rand"
	"sort"

	"lakenav/internal/cluster"
	"lakenav/internal/lake"
	"lakenav/vector"
)

// BuildConfig controls organization construction.
type BuildConfig struct {
	// Gamma is the navigation-model γ (Eq 1). Zero selects DefaultGamma.
	Gamma float64
	// Tags restricts the organization to a tag subset (one dimension of
	// a multi-dimensional organization). Nil organizes every lake tag.
	Tags []string
	// Linkage selects the agglomerative linkage for NewClustered.
	Linkage cluster.Linkage
}

// buildBase creates the fixed bottom two levels shared by every
// organization (Sec 3.2): one leaf per organized attribute and one tag
// state per organized tag, with tag states linked to the leaves of
// data(t). Tags without embeddable text attributes are skipped. It
// returns the org (rootless) and the tag states in deterministic order.
func buildBase(l *lake.Lake, cfg BuildConfig) (*Org, []StateID, error) {
	if l.Dim() == 0 {
		return nil, nil, fmt.Errorf("core: lake topics not computed (call Lake.ComputeTopics first)")
	}
	gamma := cfg.Gamma
	if gamma == 0 {
		gamma = DefaultGamma
	}
	if gamma <= 0 {
		return nil, nil, fmt.Errorf("core: gamma must be positive, got %v", gamma)
	}
	tags := cfg.Tags
	if tags == nil {
		tags = l.Tags()
	}

	o := &Org{
		Lake:     l,
		Gamma:    gamma,
		Root:     -1,
		leafOf:   make(map[lake.AttrID]StateID),
		tagState: make(map[string]StateID),
		arena:    newTopicArena(l.Dim()),
	}

	// Collect organized attributes: text, embedded, carrying at least
	// one of the organization's tags.
	attrSet := make(map[lake.AttrID]bool)
	usable := make([]string, 0, len(tags))
	for _, tag := range tags {
		ids := l.TextTagAttrs(tag)
		any := false
		for _, id := range ids {
			if l.Attr(id).EmbCount > 0 {
				attrSet[id] = true
				any = true
			}
		}
		if any {
			usable = append(usable, tag)
		}
	}
	if len(usable) == 0 {
		return nil, nil, fmt.Errorf("core: no organizable tags among %d given", len(tags))
	}
	o.attrs = make([]lake.AttrID, 0, len(attrSet))
	for a := range attrSet {
		o.attrs = append(o.attrs, a)
	}
	sort.Slice(o.attrs, func(i, j int) bool { return o.attrs[i] < o.attrs[j] })
	o.buildAttrIndex()

	// Leaves.
	for _, a := range o.attrs {
		s := o.newState(KindLeaf)
		s.Attr = a
		s.setTopic(l.Attr(a).Topic)
		o.leafOf[a] = s.ID
	}

	// Tag states.
	tagStates := make([]StateID, 0, len(usable))
	for _, tag := range usable {
		s := o.newState(KindTag)
		s.Tags = []string{tag}
		s.support = make(map[lake.AttrID]int)
		s.run = vector.NewRunning(l.Dim())
		o.tagState[tag] = s.ID
		for _, a := range l.TextTagAttrs(tag) {
			if !attrSet[a] {
				continue
			}
			o.linkChild(s.ID, o.leafOf[a])
		}
		tagStates = append(tagStates, s.ID)
	}
	return o, tagStates, nil
}

// newInterior creates an interior state ready for linking.
func (o *Org) newInterior() *State {
	s := o.newState(KindInterior)
	s.support = make(map[lake.AttrID]int)
	s.run = vector.NewRunning(o.Lake.Dim())
	return s
}

// NewFlat builds the flat baseline organization (Sec 3.2): a single root
// over all tag states. This is the navigation structure open data
// portals effectively expose (retrieval by tag).
func NewFlat(l *lake.Lake, cfg BuildConfig) (*Org, error) {
	o, tagStates, err := buildBase(l, cfg)
	if err != nil {
		return nil, err
	}
	root := o.newInterior()
	for _, ts := range tagStates {
		o.linkChild(root.ID, ts)
		root.Tags = append(root.Tags, o.States[ts].Tags...)
	}
	o.Root = root.ID
	return o, nil
}

// NewGrouped builds a three-level organization: root → one interior
// state per tag group → tag states → leaves. Callers supply the
// grouping (e.g. a known domain taxonomy); tags absent from every group
// are skipped, and unknown tags in groups are ignored. It serves as the
// "known ideal" organization in tests and as a facet-style builder in
// the public API.
func NewGrouped(l *lake.Lake, cfg BuildConfig, groups [][]string) (*Org, error) {
	flatTags := make([]string, 0)
	for _, g := range groups {
		flatTags = append(flatTags, g...)
	}
	sub := cfg
	sub.Tags = flatTags
	o, _, err := buildBase(l, sub)
	if err != nil {
		return nil, err
	}
	root := o.newInterior()
	for _, g := range groups {
		var members []StateID
		for _, tag := range g {
			if ts, ok := o.tagState[tag]; ok {
				members = append(members, ts)
			}
		}
		if len(members) == 0 {
			continue
		}
		node := o.newInterior()
		for _, ts := range members {
			o.linkChild(node.ID, ts)
			node.Tags = append(node.Tags, o.States[ts].Tags...)
		}
		o.linkChild(root.ID, node.ID)
		root.Tags = append(root.Tags, node.Tags...)
	}
	o.Root = root.ID
	if len(o.States[root.ID].Children) == 0 {
		return nil, fmt.Errorf("core: NewGrouped produced an empty organization")
	}
	return o, nil
}

// NewRandomHierarchy builds a binary hierarchy over tag states with
// random pairing. It serves as an ablation baseline for the initial-
// organization choice (clustered vs arbitrary) and as a deliberately
// bad starting point in optimizer tests.
func NewRandomHierarchy(l *lake.Lake, cfg BuildConfig, rng *rand.Rand) (*Org, error) {
	o, tagStates, err := buildBase(l, cfg)
	if err != nil {
		return nil, err
	}
	level := append([]StateID(nil), tagStates...)
	rng.Shuffle(len(level), func(i, j int) { level[i], level[j] = level[j], level[i] })
	for len(level) > 1 {
		var next []StateID
		for i := 0; i+1 < len(level); i += 2 {
			p := o.newInterior()
			o.linkChild(p.ID, level[i])
			o.linkChild(p.ID, level[i+1])
			p.Tags = append(append([]string(nil), o.States[level[i]].Tags...),
				o.States[level[i+1]].Tags...)
			next = append(next, p.ID)
		}
		if len(level)%2 == 1 {
			next = append(next, level[len(level)-1])
		}
		level = next
	}
	top := level[0]
	if o.States[top].Kind != KindInterior {
		root := o.newInterior()
		o.linkChild(root.ID, top)
		root.Tags = append(root.Tags, o.States[top].Tags...)
		top = root.ID
	}
	o.Root = top
	return o, nil
}

// NewClustered builds the paper's initial organization (Sec 3.3): an
// agglomerative hierarchical clustering over tag-state topic vectors,
// yielding a branching-factor-2 DAG above the tag states.
func NewClustered(l *lake.Lake, cfg BuildConfig) (*Org, error) {
	o, tagStates, err := buildBase(l, cfg)
	if err != nil {
		return nil, err
	}
	if len(tagStates) == 1 {
		// A single tag degenerates to the flat organization.
		root := o.newInterior()
		o.linkChild(root.ID, tagStates[0])
		root.Tags = append(root.Tags, o.States[tagStates[0]].Tags...)
		o.Root = root.ID
		return o, nil
	}

	vecs := make([]vector.Vector, len(tagStates))
	for i, ts := range tagStates {
		vecs[i] = o.States[ts].Topic()
	}
	dendro := cluster.AgglomerativeVectors(vecs, cfg.Linkage)

	// Map dendrogram nodes to states: leaves are the tag states, merges
	// become interior states (children exist before their parent by
	// construction).
	nodeState := make([]StateID, dendro.N+len(dendro.Merges))
	for i, ts := range tagStates {
		nodeState[i] = ts
	}
	for mi, m := range dendro.Merges {
		s := o.newInterior()
		nodeState[dendro.N+mi] = s.ID
		o.linkChild(s.ID, nodeState[m.A])
		o.linkChild(s.ID, nodeState[m.B])
		s.Tags = append(append([]string(nil), o.States[nodeState[m.A]].Tags...),
			o.States[nodeState[m.B]].Tags...)
	}
	o.Root = nodeState[dendro.Root()]
	return o, nil
}
