package core

// ChangeSet records which states an operation touched, so the
// incremental evaluator can re-evaluate only the affected part of the
// organization (the paper's pruning, Sec 3.4). Tracking is enabled by
// BeginChanges and read after the operation completes.
type ChangeSet struct {
	// ChildrenChanged marks states whose child list changed: their
	// outgoing transition distribution is invalid.
	ChildrenChanged map[StateID]bool
	// TopicChanged marks states whose domain membership (and therefore
	// topic vector) changed: transitions from each of their parents are
	// invalid, because softmax denominators are shared across siblings.
	TopicChanged map[StateID]bool
	// Eliminated lists states deleted by the operation.
	Eliminated []StateID
}

// NewChangeSet returns an empty change set.
func NewChangeSet() *ChangeSet {
	return &ChangeSet{
		ChildrenChanged: make(map[StateID]bool),
		TopicChanged:    make(map[StateID]bool),
	}
}

// BeginChanges starts recording structural changes into a fresh
// ChangeSet, returned to the caller. Exactly one recording may be
// active; ops applied while recording contribute to it.
func (o *Org) BeginChanges() *ChangeSet {
	if o.track != nil {
		panic("core: BeginChanges while already tracking")
	}
	o.track = NewChangeSet()
	return o.track
}

// EndChanges stops recording.
func (o *Org) EndChanges() {
	o.track = nil
}

func (o *Org) noteChildrenChanged(id StateID) {
	if o.track != nil {
		o.track.ChildrenChanged[id] = true
	}
}

func (o *Org) noteTopicChanged(id StateID) {
	if o.track != nil {
		o.track.TopicChanged[id] = true
	}
}

func (o *Org) noteEliminated(id StateID) {
	if o.track != nil {
		o.track.Eliminated = append(o.track.Eliminated, id)
	}
}
