package core

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"lakenav/internal/binfmt"
	"lakenav/internal/faultinject"
	"lakenav/internal/lake"
	"lakenav/internal/synth"
)

// canonical returns the import-normalized form of o: the edge and
// state order Import produces from an export. The binary codec targets
// this form — decode(encode(x)) is bit-identical for canonical x, which
// is exactly what every load path (JSON or binary) hands out.
func canonical(t *testing.T, l *lake.Lake, o *Org) *Org {
	t.Helper()
	c, err := Import(l, o.Export())
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestBinOrgRoundTrip is the golden pin of the PR: a JSON-canonical
// organization survives encode→decode with an identical fingerprint,
// an identical export, and a byte-identical re-encode.
func TestBinOrgRoundTrip(t *testing.T) {
	l := testLake(t)
	built, err := NewClustered(l, BuildConfig{})
	if err != nil {
		t.Fatal(err)
	}
	o := canonical(t, l, built)

	data, err := EncodeBinOrg(o)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := DecodeBinOrg(l, data)
	if err != nil {
		t.Fatal(err)
	}
	if err := dec.Validate(); err != nil {
		t.Fatal(err)
	}
	if got, want := dec.Fingerprint(), o.Fingerprint(); got != want {
		t.Fatalf("decoded fingerprint %016x != source %016x", got, want)
	}
	je, _ := json.Marshal(o.Export())
	jd, _ := json.Marshal(dec.Export())
	if !bytes.Equal(je, jd) {
		t.Fatal("decoded export differs from source export")
	}
	// Deterministic encoder: same org, same bytes.
	again, err := EncodeBinOrg(dec)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, again) {
		t.Fatal("re-encoding the decoded org produced different bytes")
	}
}

// TestBinOrgMatchesJSONPath pins the cross-format contract the
// cold-start gate relies on: loading an org through the JSON reader and
// through the binary codec yields the same fingerprint.
func TestBinOrgMatchesJSONPath(t *testing.T) {
	l := testLake(t)
	built, err := NewClustered(l, BuildConfig{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := built.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	fromJSON, err := ReadOrg(l, &buf)
	if err != nil {
		t.Fatal(err)
	}
	data, err := EncodeBinOrg(fromJSON)
	if err != nil {
		t.Fatal(err)
	}
	fromBin, err := DecodeBinOrg(l, data)
	if err != nil {
		t.Fatal(err)
	}
	if fromBin.Fingerprint() != fromJSON.Fingerprint() {
		t.Fatalf("binary path fingerprint %016x != JSON path %016x",
			fromBin.Fingerprint(), fromJSON.Fingerprint())
	}
}

// TestBinOrgDegenerateLakes round-trips organizations over minimal
// lakes: a single table with a single attribute, and a tagless lake.
func TestBinOrgDegenerateLakes(t *testing.T) {
	lakes := map[string]*lake.Lake{}

	one := lake.New()
	one.AddTable("solo", []string{"fishery"},
		lake.AttrSpec{Name: "species", Values: []string{"fisha"}})
	one.ComputeTopics(axisModel{})
	lakes["single attr"] = one

	mixed := lake.New()
	mixed.AddTable("plain", nil,
		lake.AttrSpec{Name: "species", Values: []string{"fisha", "fishb"}})
	mixed.AddTable("tagged", []string{"fishery"},
		lake.AttrSpec{Name: "catch", Values: []string{"fishc"}})
	mixed.ComputeTopics(axisModel{})
	lakes["untagged table"] = mixed

	for name, l := range lakes {
		if err := l.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		built, err := NewClustered(l, BuildConfig{})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		o := canonical(t, l, built)
		data, err := EncodeBinOrg(o)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		dec, err := DecodeBinOrg(l, data)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if dec.Fingerprint() != o.Fingerprint() {
			t.Fatalf("%s: fingerprint changed across round-trip", name)
		}
	}
}

// TestBinMultiDimRoundTrip saves a multi-dimensional organization
// through the container format and checks the mmap-backed load returns
// an equivalent canonical structure, byte-stable under re-save.
func TestBinMultiDimRoundTrip(t *testing.T) {
	tc, err := synth.GenerateTagCloud(synth.SmallTagCloudConfig())
	if err != nil {
		t.Fatal(err)
	}
	m, _, err := BuildMultiDim(tc.Lake, MultiDimConfig{K: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	canon, err := ImportMultiDim(tc.Lake, m.Export())
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	path := filepath.Join(dir, "org.bin")
	if err := SaveBinMultiDim(path, canon); err != nil {
		t.Fatal(err)
	}
	head, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !binfmt.IsMagic(head) {
		t.Fatal("saved multidim file does not start with the container magic")
	}
	loaded, err := LoadMultiDim(tc.Lake, path)
	if err != nil {
		t.Fatal(err)
	}
	for i, o := range loaded.Orgs {
		if err := o.Validate(); err != nil {
			t.Fatalf("dimension %d: %v", i, err)
		}
	}
	if loaded.Fingerprint() != canon.Fingerprint() {
		t.Fatalf("loaded fingerprint %016x != canonical %016x",
			loaded.Fingerprint(), canon.Fingerprint())
	}
	// Byte-stable re-save: decode is lossless for canonical input.
	path2 := filepath.Join(dir, "org2.bin")
	if err := SaveBinMultiDim(path2, loaded); err != nil {
		t.Fatal(err)
	}
	b1, _ := os.ReadFile(path)
	b2, _ := os.ReadFile(path2)
	if !bytes.Equal(b1, b2) {
		t.Fatal("re-saving the loaded multidim produced different bytes")
	}

	// LoadMultiDim also still reads the JSON form.
	jpath := filepath.Join(dir, "org.json")
	jf, err := os.Create(jpath)
	if err != nil {
		t.Fatal(err)
	}
	if err := canon.WriteJSON(jf); err != nil {
		t.Fatal(err)
	}
	jf.Close()
	fromJSON, err := LoadMultiDim(tc.Lake, jpath)
	if err != nil {
		t.Fatal(err)
	}
	if fromJSON.Fingerprint() != loaded.Fingerprint() {
		t.Fatal("JSON and binary load paths disagree on fingerprint")
	}
}

// TestBinMultiDimRejectsCorruptFiles tears and corrupts a saved
// multidim file; every damaged variant must be rejected.
func TestBinMultiDimRejectsCorruptFiles(t *testing.T) {
	tc, err := synth.GenerateTagCloud(synth.SmallTagCloudConfig())
	if err != nil {
		t.Fatal(err)
	}
	m, _, err := BuildMultiDim(tc.Lake, MultiDimConfig{K: 2, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "org.bin")
	if err := SaveBinMultiDim(path, m); err != nil {
		t.Fatal(err)
	}
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, frac := range []float64{0.1, 0.5, 0.95} {
		torn := filepath.Join(dir, "torn.bin")
		if err := faultinject.TornCopy(path, torn, frac); err != nil {
			t.Fatal(err)
		}
		if _, err := LoadMultiDim(tc.Lake, torn); err == nil {
			t.Fatalf("torn file (%.0f%%) accepted", frac*100)
		}
	}
	for _, off := range []int64{9, 40, info.Size() / 2, info.Size() - 1} {
		bad := filepath.Join(dir, "bad.bin")
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(bad, data, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := faultinject.CorruptByte(bad, off); err != nil {
			t.Fatal(err)
		}
		if _, err := LoadMultiDim(tc.Lake, bad); err == nil {
			t.Fatalf("corrupt byte at %d accepted", off)
		}
	}
}

// TestBinCheckpointRoundTrip saves a checkpoint in the binary format
// and checks the loaded copy is field-identical to the JSON encoding of
// the original.
func TestBinCheckpointRoundTrip(t *testing.T) {
	l := testLake(t)
	o, err := NewClustered(l, BuildConfig{})
	if err != nil {
		t.Fatal(err)
	}
	ck := &Checkpoint{
		Version:  checkpointVersion,
		Dim:      2,
		TagGroup: []string{"fishery", "grain"},
		Config: SearchConfig{
			RepFraction: 0.5, MaxIterations: 100, Window: 50,
			MinRelImprovement: 0.001, LeafProposals: 4,
			AcceptExponent: 2, Seed: 9, CheckpointEvery: 7,
		},
		Iterations: 42, Accepted: 17, Rejected: 25,
		SinceImprove: 3, PlateauRef: 0.7,
		InitialEff: 0.25, BestEff: 0.75,
		RNGState: 12345,
		Current:  o.Export(),
		Best:     o.Export(),
		binary:   true,
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "search.ck")
	if err := SaveCheckpoint(path, ck); err != nil {
		t.Fatal(err)
	}
	head, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !binfmt.IsMagic(head) {
		t.Fatal("binary checkpoint file does not start with the container magic")
	}
	loaded, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if !loaded.binary {
		t.Error("loaded checkpoint lost its binary flag; resumed searches would switch formats")
	}
	want, _ := json.Marshal(ck)
	got, _ := json.Marshal(loaded)
	if !bytes.Equal(want, got) {
		t.Fatalf("binary checkpoint round-trip drifted:\n want %s\n got  %s", want, got)
	}

	// Corruption anywhere in the file must be rejected.
	for _, off := range []int64{12, 48, int64(len(head)) / 2} {
		bad := filepath.Join(dir, "bad.ck")
		if err := os.WriteFile(bad, head, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := faultinject.CorruptByte(bad, off); err != nil {
			t.Fatal(err)
		}
		if _, err := LoadCheckpoint(bad); err == nil {
			t.Fatalf("corrupt byte at %d accepted", off)
		}
	}
}

// TestBinCheckpointOptimizerWritesBinary runs a real search with binary
// checkpoints enabled and checks the files it leaves behind parse,
// validate, and resume.
func TestBinCheckpointOptimizerWritesBinary(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bin.ck")
	_, o := checkpointLakeOrg(t)
	cfg := ckOptConfig(path)
	cfg.Checkpoint.Binary = true
	_, stats, err := OptimizeContext(context.Background(), o, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Checkpoints == 0 {
		t.Fatal("search never checkpointed; nothing tested")
	}
	head, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !binfmt.IsMagic(head) {
		t.Fatal("optimizer wrote a non-binary checkpoint despite Binary: true")
	}
	ck, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := ck.validate(); err != nil {
		t.Fatal(err)
	}
}
