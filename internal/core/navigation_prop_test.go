package core

import (
	"math"
	"math/rand"
	"testing"

	"lakenav/internal/synth"
	"lakenav/vector"
)

// Property tests of the navigation model's conservation laws on
// generated lakes and under random structural operations.

func randomTopic(rng *rand.Rand, dim int) vector.Vector {
	v := vector.New(dim)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return vector.Normalize(v)
}

// In any organization (tree or DAG produced by our operations), the
// reach mass arriving at tag states equals 1 for every query: interior
// states always split their mass among non-leaf children, and every
// source-to-sink path ends at a tag state.
func TestTagReachConservation(t *testing.T) {
	cfg := synth.SmallTagCloudConfig()
	cfg.Tags = 20
	cfg.Attributes = 80
	tc, err := synth.GenerateTagCloud(cfg)
	if err != nil {
		t.Fatal(err)
	}
	o, err := NewClustered(tc.Lake, BuildConfig{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(31))

	check := func(stage string) {
		t.Helper()
		topic := randomTopic(rng, tc.Lake.Dim())
		reach := o.ReachProbs(topic)
		// Sum over tag states weighted by the number of their incoming
		// mass... in a DAG a tag state may receive mass through several
		// parents; total inflow to the tag level is conserved only in
		// trees. What always holds: every reach value is in [0, 1+ε] per
		// path count, root is 1, and no state unreachable from the root
		// carries mass.
		if math.Abs(reach[o.Root]-1) > 1e-12 {
			t.Fatalf("%s: root reach %v", stage, reach[o.Root])
		}
		levels := o.Levels()
		for id, r := range reach {
			if r < -1e-12 {
				t.Fatalf("%s: negative reach %v at %d", stage, r, id)
			}
			if levels[id] == -1 && r != 0 {
				t.Fatalf("%s: unreachable state %d has reach %v", stage, id, r)
			}
		}
	}

	check("initial")
	// Tree invariant before any DAG-forming ops: tag reach sums to 1.
	topic := randomTopic(rng, tc.Lake.Dim())
	reach := o.ReachProbs(topic)
	var tagSum float64
	for _, ts := range o.TagStates() {
		tagSum += reach[ts]
	}
	if math.Abs(tagSum-1) > 1e-9 {
		t.Fatalf("tree tag-reach sum = %v", tagSum)
	}

	// Apply a series of random ops; conservation-style invariants must
	// survive every one.
	for step := 0; step < 15; step++ {
		if _, _, ok := applyRandomOp(o, rng); !ok {
			break
		}
		check("after op")
		if err := o.Validate(); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
	}
}

// Discovery probabilities are proper probabilities for every attribute,
// and per-query leaf transitions at a tag state sum to 1.
func TestDiscoveryProbabilityBounds(t *testing.T) {
	cfg := synth.SmallTagCloudConfig()
	cfg.Tags = 15
	cfg.Attributes = 60
	tc, err := synth.GenerateTagCloud(cfg)
	if err != nil {
		t.Fatal(err)
	}
	o, err := NewClustered(tc.Lake, BuildConfig{})
	if err != nil {
		t.Fatal(err)
	}
	probs := o.AttrDiscoveryProbs()
	for i, p := range probs {
		if p <= 0 || p > 1 {
			t.Errorf("attr %d discovery prob %v", i, p)
		}
	}
	// Leaf-level softmax at each tag state sums to 1 for any topic.
	rng := rand.New(rand.NewSource(37))
	topic := randomTopic(rng, tc.Lake.Dim())
	for _, ts := range o.TagStates() {
		trans := o.TransitionProbs(ts, topic)
		var sum float64
		for _, p := range trans {
			sum += p
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("tag state %d leaf transitions sum to %v", ts, sum)
		}
	}
}

// The discovery probability of a table never decreases when one of its
// attributes gains an extra tag-state parent path through AddLeafParent
// AND nothing else in the organization competes... in general an extra
// path changes softmax competition, so what must ALWAYS hold is only
// that probabilities remain valid. This test pins the weaker invariant
// under leaf ops.
func TestLeafOpsKeepValidProbabilities(t *testing.T) {
	cfg := synth.SmallTagCloudConfig()
	cfg.Tags = 12
	cfg.Attributes = 50
	tc, err := synth.GenerateTagCloud(cfg)
	if err != nil {
		t.Fatal(err)
	}
	o, err := NewClustered(tc.Lake, BuildConfig{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(41))
	applied := 0
	for step := 0; step < 10; step++ {
		// Find a random legal AddLeafParent.
		attrs := o.Attrs()
		a := attrs[rng.Intn(len(attrs))]
		leaf := o.Leaf(a)
		var target StateID = -1
		for _, ts := range o.TagStates() {
			if o.CanAddParent(ts, leaf) {
				target = ts
				break
			}
		}
		if target < 0 {
			continue
		}
		o.AddLeafParentOp(target, leaf)
		applied++
		for i, p := range o.AttrDiscoveryProbs() {
			if p < 0 || p > 1 {
				t.Fatalf("step %d: attr %d prob %v", step, i, p)
			}
		}
	}
	if applied == 0 {
		t.Skip("no applicable leaf ops")
	}
	if err := o.Validate(); err != nil {
		t.Fatal(err)
	}
}
