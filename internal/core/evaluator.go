package core

import (
	"fmt"
	"math/rand"
	"sort"

	"lakenav/internal/lake"
	"lakenav/vector"
)

// Query is one evaluation probe: an attribute whose topic vector stands
// in for a user intent. In exact mode every organized attribute is its
// own query; in approximate mode a representative attribute's discovery
// probability stands in for all Members (Sec 3.4).
type Query struct {
	// Attr is the probe attribute (the representative).
	Attr lake.AttrID
	// Topic is μ_Attr.
	Topic vector.Vector
	// Members are the attributes this query's result approximates,
	// including Attr itself.
	Members []lake.AttrID
}

// Evaluator computes and incrementally maintains the organization
// effectiveness P(T|O) (Eq 6) across search operations. It caches, per
// query, the reach probability of every non-leaf state and the query
// leaf's discovery probability, and after an operation re-evaluates only
// the states downstream of the change (the paper's pruning), counting
// how much work that saved for the Figure 3 experiment.
type Evaluator struct {
	org     *Org
	queries []Query
	// repOf maps each position in org.Attrs() to its query index.
	repOf []int
	// workers bounds the goroutine pool for the per-query loops. Results
	// are identical for every value (each query owns its reach row and
	// reductions happen in query order); it only trades latency for CPU.
	workers int

	// queryNorm[q] caches ‖Topic_q‖₂ for the similarity kernel.
	queryNorm []float64

	// nStates is len(org.States) when the rows were cached; any growth
	// of the organization after construction makes every row stale, and
	// checkFresh fails loudly instead of silently scoring the new states
	// unreachable.
	nStates int
	// reachFlat backs every reach row in one contiguous block (query-
	// major), so a worker sweeping its query chunk walks sequential
	// memory.
	reachFlat []float64
	// reach[q][stateID]: P(state | query topic) for non-leaf states.
	// Rows are capped views into reachFlat.
	reach [][]float64
	// leafProb[q]: discovery probability of the query's own leaf.
	leafProb []float64
	// leafDirty and leafNew are per-query scratch for the parallel leaf
	// re-evaluation phase of Reevaluate.
	leafDirty []bool
	leafNew   []float64
	// eff is the current effectiveness (Eq 6).
	eff float64

	// tableAttrs[i] lists, per lake table, the positions in org.Attrs()
	// of its organized attributes; tables with none are omitted.
	tableAttrs [][]int
	tables     int

	// rollback state for the last Reevaluate.
	savedReach    []savedCell
	savedLeafProb []savedLeaf
	savedEff      float64
	pending       bool

	// repLeaves caches the leaf states of query attributes. Precomputed
	// at construction and immutable after, so concurrent probes never
	// race an initialization.
	repLeaves map[StateID]bool

	// ws holds one scratch slot per worker; worker w (and only worker w)
	// uses ws[w], sized serially by ensureScratch before any fork.
	ws []evalScratch

	// Reevaluate plan scratch, rebuilt serially per call and read-only
	// inside the worker sweep (see Reevaluate).
	affectedTopo   []StateID
	planParents    []StateID
	planParentOff  []int32
	planPairStart  []int32
	planPairParent []int32
	planPairIdx    []int32
	parentSlot     []int32
	parentSlotGen  []uint64
	planGen        uint64

	// Instrumentation for Figure 3.
	LastStatesVisited int
	LastAttrsVisited  int
}

// evalScratch is one worker's private buffers for the zero-allocation
// kernels: probs holds one transition distribution (cap ≥ the widest
// fan-out), trans holds the flat per-plan transition table Reevaluate
// fills per query.
type evalScratch struct {
	probs []float64
	trans []float64
}

// ensureScratch guarantees scratch slots 0..workers-1 exist with the
// required capacities. It runs serially before worker forks; workers
// never resize their slot.
func (ev *Evaluator) ensureScratch(workers, probsLen, transLen int) {
	for len(ev.ws) < workers {
		ev.ws = append(ev.ws, evalScratch{})
	}
	for w := 0; w < workers; w++ {
		if cap(ev.ws[w].probs) < probsLen {
			ev.ws[w].probs = make([]float64, probsLen)
		}
		if cap(ev.ws[w].trans) < transLen {
			ev.ws[w].trans = make([]float64, transLen)
		}
	}
}

// checkFresh fails loudly when the organization grew states after this
// evaluator cached its reach rows: the rows cover only the states that
// existed at construction, so evaluating against a grown organization
// would silently score every new state unreachable. Growth (e.g.
// ApplyLakeBatch) requires a fresh evaluator — exactly what
// ReoptimizeLocal builds.
func (ev *Evaluator) checkFresh(op string) {
	if len(ev.org.States) != ev.nStates {
		panic(fmt.Sprintf("core: %s on a stale evaluator: organization has %d states, evaluator cached %d — rebuild the evaluator after adding states", op, len(ev.org.States), ev.nStates))
	}
}

type savedCell struct {
	q     int
	state StateID
	val   float64
}

type savedLeaf struct {
	q   int
	val float64
}

// NewEvaluator builds an evaluator over org. repFraction in (0, 1)
// selects approximate mode with that fraction of attributes as
// representatives (the paper uses 10%); any other value selects exact
// mode. The rng drives representative seeding and must be non-nil in
// approximate mode.
func NewEvaluator(org *Org, repFraction float64, rng *rand.Rand) (*Evaluator, error) {
	return NewEvaluatorWorkers(org, repFraction, rng, 0)
}

// NewEvaluatorWorkers is NewEvaluator with an explicit worker-pool size
// for the per-query loops; workers <= 0 selects GOMAXPROCS. The results
// are bit-identical for every pool size — the knob only trades latency
// for CPU.
func NewEvaluatorWorkers(org *Org, repFraction float64, rng *rand.Rand, workers int) (*Evaluator, error) {
	ev := &Evaluator{org: org, workers: resolveWorkers(workers)}
	if repFraction > 0 && repFraction < 1 {
		if rng == nil {
			return nil, fmt.Errorf("core: approximate evaluator needs an rng")
		}
		ev.queries, ev.repOf = selectRepresentatives(org, repFraction, rng)
	} else {
		attrs := org.Attrs()
		ev.queries = make([]Query, len(attrs))
		ev.repOf = make([]int, len(attrs))
		for i, a := range attrs {
			ev.queries[i] = Query{Attr: a, Topic: org.State(org.Leaf(a)).topic, Members: []lake.AttrID{a}}
			ev.repOf[i] = i
		}
	}

	idx := org.attrIndex()
	for _, t := range org.Lake.Tables {
		var positions []int
		for _, a := range t.Attrs {
			if p, ok := idx[a]; ok {
				positions = append(positions, p)
			}
		}
		if positions != nil {
			ev.tableAttrs = append(ev.tableAttrs, positions)
		}
	}
	ev.tables = len(org.Lake.Tables)

	ev.queryNorm = make([]float64, len(ev.queries))
	for q := range ev.queries {
		ev.queryNorm[q] = vector.Norm(ev.queries[q].Topic)
	}

	// Precompute the representative-leaf set so concurrent probes
	// (IsRepresentativeLeaf) read an immutable map instead of racing a
	// lazy first-call initialization.
	ev.repLeaves = make(map[StateID]bool, len(ev.queries))
	for _, q := range ev.queries {
		if leaf := org.Leaf(q.Attr); leaf >= 0 {
			ev.repLeaves[leaf] = true
		}
	}

	nq := len(ev.queries)
	ev.nStates = len(org.States)
	ev.reachFlat = make([]float64, nq*ev.nStates)
	ev.reach = make([][]float64, nq)
	for q := range ev.reach {
		ev.reach[q] = ev.reachFlat[q*ev.nStates : (q+1)*ev.nStates : (q+1)*ev.nStates]
	}
	ev.leafProb = make([]float64, nq)
	ev.leafDirty = make([]bool, nq)
	ev.leafNew = make([]float64, nq)
	// Warm the caches the workers share read-only (topo order and the
	// CSR adjacency snapshot); computing them lazily inside the pool
	// would race.
	org.Topo()
	adj := org.adjacency()
	wk := scaleWorkers(nq*ev.nStates, ev.workers)
	ev.ensureScratch(wk, adj.maxChildren, 0)
	parallelForWorkers(nq, wk, func(w, lo, hi int) {
		probs := ev.ws[w].probs
		for q := lo; q < hi; q++ {
			org.reachProbsInto(ev.queries[q].Topic, ev.queryNorm[q], ev.reach[q], probs)
			ev.leafProb[q] = org.leafProbInto(ev.queries[q].Attr, ev.queries[q].Topic, ev.queryNorm[q], ev.reach[q], probs)
		}
	})
	ev.eff = ev.computeEff()
	metricEvaluatorBuilds.Inc()
	return ev, nil
}

// SetWorkers adjusts the worker-pool bound for subsequent evaluations;
// n <= 0 selects GOMAXPROCS. Exposed for benchmarks and for services
// that resize pools at runtime — the choice never changes results.
func (ev *Evaluator) SetWorkers(n int) { ev.workers = resolveWorkers(n) }

// Queries returns the evaluation probes (exposed for experiments).
func (ev *Evaluator) Queries() []Query { return ev.queries }

// Approximate reports whether the evaluator runs in representative mode
// (fewer queries than organized attributes).
func (ev *Evaluator) Approximate() bool { return len(ev.queries) < len(ev.org.Attrs()) }

// IsRepresentativeLeaf reports whether state id is the leaf of a query
// attribute. In approximate mode, a leaf-level operation on a
// representative's own leaf changes only that representative's true
// discovery probability but the evaluator books the change for every
// member it stands for — a systematic overestimate the optimizer must
// not exploit, so such proposals are skipped.
func (ev *Evaluator) IsRepresentativeLeaf(id StateID) bool {
	return ev.repLeaves[id]
}

// Effectiveness returns the current cached P(T|O).
func (ev *Evaluator) Effectiveness() float64 { return ev.eff }

// AttrProb returns the (possibly representative-approximated) discovery
// probability of the attribute at position i of org.Attrs().
func (ev *Evaluator) AttrProb(i int) float64 { return ev.leafProb[ev.repOf[i]] }

// computeEff evaluates Eq 6 from the cached leaf probabilities.
func (ev *Evaluator) computeEff() float64 {
	if ev.tables == 0 {
		return 0
	}
	var sum float64
	for _, positions := range ev.tableAttrs {
		fail := 1.0
		for _, p := range positions {
			fail *= 1 - ev.leafProb[ev.repOf[p]]
		}
		sum += 1 - fail
	}
	return sum / float64(ev.tables)
}

// MeanReach returns, per state, the reachability probability P(s|O)
// (Eq 10): the mean reach over all queries. Deleted states score 0.
// The reduction is partitioned by state, so each output cell is summed
// by exactly one worker in ascending query order — the same order (and
// therefore the same floating-point result) as a serial pass.
func (ev *Evaluator) MeanReach() []float64 {
	metricMeanReaches.Inc()
	// Cached rows cover exactly the construction-time state set; a grown
	// organization must fail here, not silently score new states 0.
	ev.checkFresh("MeanReach")
	out := make([]float64, len(ev.org.States))
	if len(ev.queries) == 0 {
		return out
	}
	inv := 1 / float64(len(ev.queries))
	parallelFor(len(out), scaleWorkers(len(ev.queries)*len(out), ev.workers), func(lo, hi int) {
		for q := range ev.queries {
			reach := ev.reach[q]
			for id := lo; id < hi; id++ {
				out[id] += reach[id]
			}
		}
		for id := lo; id < hi; id++ {
			if ev.org.States[id].deleted {
				out[id] = 0
				continue
			}
			out[id] *= inv
		}
	})
	return out
}

// Reevaluate recomputes the cached probabilities affected by cs and
// returns the new effectiveness. The previous values are retained until
// Commit or Rollback is called; exactly one of them must follow.
func (ev *Evaluator) Reevaluate(cs *ChangeSet) float64 {
	if ev.pending {
		panic("core: Reevaluate with uncommitted previous evaluation")
	}
	ev.checkFresh("Reevaluate")
	o := ev.org

	// States whose outgoing transition distributions changed.
	changedOut := make(map[StateID]bool)
	for id := range cs.ChildrenChanged {
		if !o.States[id].deleted && o.States[id].Kind != KindLeaf {
			changedOut[id] = true
		}
	}
	for id := range cs.TopicChanged {
		if o.States[id].deleted {
			continue
		}
		for _, p := range o.States[id].Parents {
			if !o.States[p].deleted {
				changedOut[p] = true
			}
		}
	}

	// Affected: non-leaf states strictly downstream of any changed-out
	// state — their reach probabilities are stale.
	affected := make(map[StateID]bool)
	var stack []StateID
	for id := range changedOut {
		for _, c := range o.States[id].Children {
			if o.States[c].Kind != KindLeaf && !affected[c] {
				affected[c] = true
				stack = append(stack, c)
			}
		}
	}
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, c := range o.States[id].Children {
			if o.States[c].Kind != KindLeaf && !affected[c] {
				affected[c] = true
				stack = append(stack, c)
			}
		}
	}

	// Order the affected states topologically. Topo() also warms the CSR
	// adjacency snapshot the workers read.
	topo := o.Topo()
	adj := o.adjacency()
	ev.affectedTopo = ev.affectedTopo[:0]
	for _, id := range topo {
		if affected[id] {
			ev.affectedTopo = append(ev.affectedTopo, id)
		}
	}
	affectedTopo := ev.affectedTopo
	// Eliminated states fall out of Topo; zero their reach explicitly.
	for _, e := range cs.Eliminated {
		affected[e] = true
	}

	// Build the transition plan, serially: the distinct parents of the
	// affected states in first-encounter order, each with an offset into
	// a flat per-worker transition table sized by its fan-out, and per
	// affected state the (parent, table index) pairs its reach sums
	// over, with the child's position within the parent's children
	// resolved once here instead of rescanned per query. The sweep below
	// then computes every distinct parent's transition distribution
	// exactly once per query — same distributions, same summation order
	// as the old per-query lazy cache, without its per-parent map and
	// slice allocations.
	ev.planParents = ev.planParents[:0]
	ev.planParentOff = append(ev.planParentOff[:0], 0)
	ev.planPairStart = append(ev.planPairStart[:0], 0)
	ev.planPairParent = ev.planPairParent[:0]
	ev.planPairIdx = ev.planPairIdx[:0]
	if ev.parentSlot == nil {
		ev.parentSlot = make([]int32, ev.nStates)
		ev.parentSlotGen = make([]uint64, ev.nStates)
	}
	ev.planGen++
	for _, id := range affectedTopo {
		for _, p := range adj.parentsOf(id) {
			var slot int32
			if ev.parentSlotGen[p] == ev.planGen {
				slot = ev.parentSlot[p]
			} else {
				slot = int32(len(ev.planParents))
				ev.parentSlot[p] = slot
				ev.parentSlotGen[p] = ev.planGen
				ev.planParents = append(ev.planParents, StateID(p))
				ev.planParentOff = append(ev.planParentOff,
					ev.planParentOff[slot]+int32(len(adj.childrenOf(StateID(p)))))
			}
			ci := int32(-1)
			for i, c := range adj.childrenOf(StateID(p)) {
				if StateID(c) == id {
					ci = int32(i)
					break
				}
			}
			ev.planPairParent = append(ev.planPairParent, p)
			ev.planPairIdx = append(ev.planPairIdx, ev.planParentOff[slot]+ci)
		}
		ev.planPairStart = append(ev.planPairStart, int32(len(ev.planPairParent)))
	}
	transLen := int(ev.planParentOff[len(ev.planParentOff)-1])

	ev.savedLeafProb = ev.savedLeafProb[:0]
	ev.savedEff = ev.eff
	ev.pending = true

	// Each query q owns row ev.reach[q] and the fixed-size segment
	// [q*perQuery, (q+1)*perQuery) of the rollback log — every query
	// saves exactly one cell per affected state plus one per eliminated
	// state — so the parallel sweep is race-free and the log layout is
	// identical to the serial one, independent of worker count.
	perQuery := len(affectedTopo) + len(cs.Eliminated)
	need := len(ev.queries) * perQuery
	if cap(ev.savedReach) < need {
		ev.savedReach = make([]savedCell, need)
	} else {
		ev.savedReach = ev.savedReach[:need]
	}
	workers := scaleWorkers(len(ev.queries)*(perQuery+1), ev.workers)
	ev.ensureScratch(workers, adj.maxChildren, transLen)
	parallelForWorkers(len(ev.queries), workers, func(w, lo, hi int) {
		trans := ev.ws[w].trans[:transLen]
		for q := lo; q < hi; q++ {
			topic, topicNorm := ev.queries[q].Topic, ev.queryNorm[q]
			reach := ev.reach[q]
			saved := ev.savedReach[q*perQuery : (q+1)*perQuery]
			for pi, p := range ev.planParents {
				o.transitionsInto(adj, p, topic, topicNorm, trans[ev.planParentOff[pi]:ev.planParentOff[pi+1]])
			}
			for i, id := range affectedTopo {
				saved[i] = savedCell{q, id, reach[id]}
				var r float64
				for k := ev.planPairStart[i]; k < ev.planPairStart[i+1]; k++ {
					r += reach[ev.planPairParent[k]] * trans[ev.planPairIdx[k]]
				}
				reach[id] = r
			}
			for i, e := range cs.Eliminated {
				saved[len(affectedTopo)+i] = savedCell{q, e, reach[e]}
				reach[e] = 0
			}
		}
	})

	// Re-evaluate leaf probabilities for queries whose leaf hangs under
	// an affected or transition-changed tag state. The workers only fill
	// per-query scratch; the dirty results are folded into the cache (and
	// the rollback log) serially in query order below.
	parallelForWorkers(len(ev.queries), workers, func(w, lo, hi int) {
		probs := ev.ws[w].probs
		for q := lo; q < hi; q++ {
			ev.leafDirty[q] = false
			leaf := o.Leaf(ev.queries[q].Attr)
			if leaf < 0 {
				continue
			}
			for _, t := range adj.parentsOf(leaf) {
				if affected[StateID(t)] || changedOut[StateID(t)] {
					ev.leafDirty[q] = true
					break
				}
			}
			if ev.leafDirty[q] {
				ev.leafNew[q] = o.leafProbInto(ev.queries[q].Attr, ev.queries[q].Topic, ev.queryNorm[q], ev.reach[q], probs)
			}
		}
	})
	attrsVisited := 0
	for q := range ev.queries {
		if !ev.leafDirty[q] {
			continue
		}
		ev.savedLeafProb = append(ev.savedLeafProb, savedLeaf{q, ev.leafProb[q]})
		ev.leafProb[q] = ev.leafNew[q]
		// One discovery-probability evaluation per recomputed query.
		// Figure 3 counts evaluations against the total attribute count,
		// which is how the representative approximation reaches the
		// paper's ~6%: only ~60% of the 10% representatives per
		// iteration.
		attrsVisited++
	}

	visited := len(affected)
	for id := range changedOut {
		if !affected[id] {
			visited++
		}
	}
	ev.LastStatesVisited = visited
	ev.LastAttrsVisited = attrsVisited
	metricReevaluates.Inc()
	metricStatesRevisited.Add(uint64(visited))
	metricLeafEvals.Add(uint64(attrsVisited))
	ev.eff = ev.computeEff()
	return ev.eff
}

// savedReachShrinkCap is the rollback-log capacity (in cells) above
// which Commit/Rollback consider releasing the backing array: one
// poorly-pruned re-evaluation must not pin worst-case memory for the
// evaluator's lifetime.
const savedReachShrinkCap = 1 << 15

// releaseSavedReach drops the rollback log's backing array once the
// pending evaluation is resolved, if the capacity is past the
// high-water threshold and the last evaluation used little of it
// (steady-state large evaluations keep their buffer).
func (ev *Evaluator) releaseSavedReach() {
	if cap(ev.savedReach) > savedReachShrinkCap && len(ev.savedReach) <= cap(ev.savedReach)/4 {
		ev.savedReach = nil
	}
}

// Commit accepts the last Reevaluate. Calling it without a pending
// Reevaluate is a sequencing error reported as an error value (not a
// panic): a long-running service embedding the evaluator should log
// and recover, not crash.
func (ev *Evaluator) Commit() error {
	if !ev.pending {
		return fmt.Errorf("core: Commit without a pending Reevaluate")
	}
	ev.pending = false
	ev.releaseSavedReach()
	return nil
}

// Rollback restores the cached state from before the last Reevaluate.
// The organization itself must be restored separately (Org.Undo). Like
// Commit it reports misuse as an error value.
func (ev *Evaluator) Rollback() error {
	if !ev.pending {
		return fmt.Errorf("core: Rollback without a pending Reevaluate")
	}
	for i := len(ev.savedReach) - 1; i >= 0; i-- {
		c := ev.savedReach[i]
		ev.reach[c.q][c.state] = c.val
	}
	for i := len(ev.savedLeafProb) - 1; i >= 0; i-- {
		c := ev.savedLeafProb[i]
		ev.leafProb[c.q] = c.val
	}
	ev.eff = ev.savedEff
	ev.pending = false
	ev.releaseSavedReach()
	return nil
}

// TotalStates returns the number of live non-leaf states (the
// denominator of the Figure 3 state-visit fraction).
func (ev *Evaluator) TotalStates() int {
	n := 0
	for _, s := range ev.org.States {
		if !s.deleted && s.Kind != KindLeaf {
			n++
		}
	}
	return n
}

// TotalAttrs returns the number of organized attributes.
func (ev *Evaluator) TotalAttrs() int { return len(ev.org.Attrs()) }

// selectRepresentatives picks ⌈fraction·n⌉ representative attributes by
// farthest-point (k-means++-style) seeding over attribute topic vectors
// and assigns every attribute to its nearest representative, realizing
// the one-to-one representative/partition mapping of Sec 3.4.
func selectRepresentatives(org *Org, fraction float64, rng *rand.Rand) ([]Query, []int) {
	attrs := org.Attrs()
	n := len(attrs)
	k := int(float64(n)*fraction + 0.5)
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	topics := make([]vector.Vector, n)
	norms := make([]float64, n)
	for i, a := range attrs {
		leaf := org.State(org.Leaf(a))
		topics[i] = leaf.topic
		norms[i] = leaf.topicNorm
	}

	reps := make([]int, 0, k)
	first := rng.Intn(n)
	reps = append(reps, first)
	minDist := make([]float64, n)
	for i := range minDist {
		minDist[i] = 1 - vector.CosineNorms(topics[i], topics[first], norms[i], norms[first])
	}
	for len(reps) < k {
		var total float64
		for _, d := range minDist {
			total += d
		}
		var next int
		if total <= 0 {
			next = -1
			chosen := make(map[int]bool, len(reps))
			for _, r := range reps {
				chosen[r] = true
			}
			for i := 0; i < n; i++ {
				if !chosen[i] {
					next = i
					break
				}
			}
			if next == -1 {
				break
			}
		} else {
			r := rng.Float64() * total
			next = n - 1
			var acc float64
			for i, d := range minDist {
				acc += d
				if acc >= r {
					next = i
					break
				}
			}
		}
		reps = append(reps, next)
		for i := range minDist {
			if d := 1 - vector.CosineNorms(topics[i], topics[next], norms[i], norms[next]); d < minDist[i] {
				minDist[i] = d
			}
		}
	}
	sort.Ints(reps)

	queries := make([]Query, len(reps))
	repIdx := make(map[int]int, len(reps))
	for qi, ri := range reps {
		queries[qi] = Query{Attr: attrs[ri], Topic: topics[ri]}
		repIdx[ri] = qi
	}
	repOf := make([]int, n)
	for i := 0; i < n; i++ {
		if qi, ok := repIdx[i]; ok {
			repOf[i] = qi
			continue
		}
		best, bd := 0, -2.0
		for qi, ri := range reps {
			if s := vector.CosineNorms(topics[i], topics[ri], norms[i], norms[ri]); s > bd {
				bd, best = s, qi
			}
		}
		repOf[i] = best
	}
	for i, qi := range repOf {
		queries[qi].Members = append(queries[qi].Members, attrs[i])
	}
	return queries, repOf
}
