package core

import (
	"errors"
	"fmt"
	"io"
	"math"
	"os"

	"lakenav/internal/binfmt"
	"lakenav/internal/lake"
	"lakenav/vector"
)

// Binary organization format (binfmt.KindOrg / binfmt.KindMultiDim).
//
// Two flavors share one layout, distinguished by a meta flag:
//
//   - full: carries the topic vector block (arena-shaped), the run
//     accumulators, and the support tables verbatim, so decode is
//     read-header + bulk-copy instead of per-state JSON unmarshal plus
//     O(attrs × depth × dim) topic propagation. This is the cold-start
//     org file format.
//   - structural: states, edges, and the string table only — exactly
//     the information of an ExportedOrg. Decode goes through Import
//     like the JSON path. Checkpoints use it because their cost is
//     write-side.
//
// Both decoders reproduce Import's edge insertion order (children
// linked in stored order, states processed by ascending max-distance-
// to-leaf with original order as the tie-break), so a decoded org is
// bit-identical — Parents order and all — to the JSON path over the
// same snapshot.

// orgFormatVersion is the kindVer of org and multidim containers.
const orgFormatVersion = 1

// Section ids of a KindOrg container.
const (
	secOrgMeta      = 1
	secOrgStrOffs   = 2
	secOrgStrBytes  = 3
	secOrgStates    = 4
	secOrgChildren  = 5
	secOrgSupport   = 6
	secOrgVecs      = 7
	secOrgRunSums   = 8
	secOrgRunCounts = 9
)

// Meta word indices (secOrgMeta is a packed []uint64).
const (
	orgMetaDim     = iota // topic dimensionality (0 for structural)
	orgMetaStates         // state count
	orgMetaRoot           // dense ref of the root
	orgMetaGamma          // Float64bits of Gamma
	orgMetaFlags          // orgFlag*
	orgMetaNonLeaf        // non-leaf state count (full flavor)
	orgMetaWords
)

// orgFlagFull marks a full-fidelity container (vec/run/support
// sections present).
const orgFlagFull = 1

// State records (secOrgStates) are stateRecWords packed uint32s each.
const (
	stateRecKind     = iota // low 8 bits Kind, bit 8 = topic present
	stateRecName            // string ref: leaf attr qualified name / tag; noName for interiors
	stateRecChildOff        // offset into secOrgChildren, in refs
	stateRecChildLen        // child count
	stateRecSupOff          // offset into secOrgSupport, in pairs
	stateRecSupLen          // support pair count
	stateRecWords
)

const (
	stateHasTopic = 1 << 8
	noName        = ^uint32(0)
)

// Section ids of a KindMultiDim container. Each dimension's org is a
// nested KindOrg container stored as an opaque section blob.
const (
	secMDMeta      = 1
	secMDStrOffs   = 2
	secMDStrBytes  = 3
	secMDGroupLens = 4
	secMDGroupRefs = 5
	secMDOrgBase   = 16
)

// EncodeBinOrg serializes o as a full-fidelity binary container. Live
// states are renumbered densely in States order — the same renumbering
// Export+Import performs — so decoding the result reproduces the
// organization the JSON path would, bit for bit, when o is canonical
// (itself the product of Import).
func EncodeBinOrg(o *Org) ([]byte, error) {
	w, err := binOrgWriter(o)
	if err != nil {
		return nil, err
	}
	return w.Bytes()
}

func binOrgWriter(o *Org) (*binfmt.Writer, error) {
	dim := o.Lake.Dim()
	if dim == 0 {
		return nil, fmt.Errorf("core: binorg encode needs computed lake topics")
	}
	dense := make(map[StateID]uint32, len(o.States))
	live := make([]*State, 0, len(o.States))
	for _, s := range o.States {
		if s.deleted {
			continue
		}
		dense[s.ID] = uint32(len(live))
		live = append(live, s)
	}
	if len(live) == 0 {
		return nil, fmt.Errorf("core: binorg encode of empty organization")
	}
	rootRef, ok := dense[o.Root]
	if !ok {
		return nil, fmt.Errorf("core: binorg encode root %d not live", o.Root)
	}

	st := binfmt.NewStringTableBuilder()
	recs := make([]uint32, 0, len(live)*stateRecWords)
	var children, support []uint32
	vecs := make([]float64, len(live)*dim)
	var runSums []float64
	var runCounts []uint64
	nonLeaf := 0
	for i, s := range live {
		kf := uint32(s.Kind)
		name := noName
		switch s.Kind {
		case KindLeaf:
			name = st.Ref(o.Lake.Attr(s.Attr).QualifiedName(o.Lake))
		case KindTag:
			if len(s.Tags) != 1 {
				return nil, fmt.Errorf("core: binorg encode tag state %d has %d tags", s.ID, len(s.Tags))
			}
			name = st.Ref(s.Tags[0])
		case KindInterior:
		default:
			return nil, fmt.Errorf("core: binorg encode unknown kind %v", s.Kind)
		}
		if s.topic != nil {
			kf |= stateHasTopic
			copy(vecs[i*dim:(i+1)*dim], s.topic)
		}
		childOff := uint32(len(children))
		for _, c := range s.Children {
			ref, ok := dense[c]
			if !ok {
				return nil, fmt.Errorf("core: binorg encode state %d has deleted child %d", s.ID, c)
			}
			children = append(children, ref)
		}
		supOff := uint32(len(support) / 2)
		if s.Kind != KindLeaf {
			for _, a := range s.Domain() {
				leaf, ok := o.leafOf[a]
				if !ok {
					return nil, fmt.Errorf("core: binorg encode attr %d has no leaf state", a)
				}
				ref, ok := dense[leaf]
				if !ok {
					return nil, fmt.Errorf("core: binorg encode leaf of attr %d deleted", a)
				}
				support = append(support, ref, uint32(s.support[a]))
			}
			runCounts = append(runCounts, uint64(s.run.Count()))
			runSums = append(runSums, s.run.Sum()...)
			nonLeaf++
		}
		recs = append(recs, kf, name,
			childOff, uint32(len(s.Children)),
			supOff, uint32(len(support)/2)-supOff)
	}

	meta := make([]uint64, orgMetaWords)
	meta[orgMetaDim] = uint64(dim)
	meta[orgMetaStates] = uint64(len(live))
	meta[orgMetaRoot] = uint64(rootRef)
	meta[orgMetaGamma] = math.Float64bits(o.Gamma)
	meta[orgMetaFlags] = orgFlagFull
	meta[orgMetaNonLeaf] = uint64(nonLeaf)

	w := binfmt.NewWriter(binfmt.KindOrg, orgFormatVersion)
	w.AddUint64s(secOrgMeta, meta)
	st.AddTo(w, secOrgStrOffs, secOrgStrBytes)
	w.AddUint32s(secOrgStates, recs)
	w.AddUint32s(secOrgChildren, children)
	w.AddUint32s(secOrgSupport, support)
	w.AddFloat64s(secOrgVecs, vecs)
	w.AddFloat64s(secOrgRunSums, runSums)
	w.AddUint64s(secOrgRunCounts, runCounts)
	return w, nil
}

// encodeBinExportedOrg serializes a structural snapshot (the
// checkpoint flavor): states and edges only, topics and domains left
// to Import. State ids are renumbered to their position in ex.States,
// which Import is invariant under.
func encodeBinExportedOrg(ex *ExportedOrg) (*binfmt.Writer, error) {
	idx := make(map[int]uint32, len(ex.States))
	for i, es := range ex.States {
		if _, dup := idx[es.ID]; dup {
			return nil, fmt.Errorf("core: binorg encode duplicate state id %d", es.ID)
		}
		idx[es.ID] = uint32(i)
	}
	rootRef, ok := idx[ex.Root]
	if !ok {
		return nil, fmt.Errorf("core: binorg encode root %d not among states", ex.Root)
	}

	st := binfmt.NewStringTableBuilder()
	recs := make([]uint32, 0, len(ex.States)*stateRecWords)
	var children []uint32
	for _, es := range ex.States {
		var kf uint32
		name := noName
		switch es.Kind {
		case "leaf":
			kf = uint32(KindLeaf)
			name = st.Ref(es.Attr)
		case "tag":
			kf = uint32(KindTag)
			if len(es.Tags) != 1 {
				return nil, fmt.Errorf("core: binorg encode tag state %d has %d tags", es.ID, len(es.Tags))
			}
			name = st.Ref(es.Tags[0])
		case "interior":
			kf = uint32(KindInterior)
		default:
			return nil, fmt.Errorf("core: binorg encode unknown state kind %q", es.Kind)
		}
		childOff := uint32(len(children))
		for _, c := range es.Children {
			ref, ok := idx[c]
			if !ok {
				return nil, fmt.Errorf("core: binorg encode state %d references unknown child %d", es.ID, c)
			}
			children = append(children, ref)
		}
		// The structural flavor has no support spans; those two record
		// words carry the display label ref and the exported domain
		// size instead, so checkpoints round-trip field-for-field.
		if es.DomainSize < 0 || uint64(es.DomainSize) > uint64(^uint32(0)) {
			return nil, fmt.Errorf("core: binorg encode state %d domain size %d out of range", es.ID, es.DomainSize)
		}
		recs = append(recs, kf, name, childOff, uint32(len(es.Children)), st.Ref(es.Label), uint32(es.DomainSize))
	}

	meta := make([]uint64, orgMetaWords)
	meta[orgMetaStates] = uint64(len(ex.States))
	meta[orgMetaRoot] = uint64(rootRef)
	meta[orgMetaGamma] = math.Float64bits(ex.Gamma)

	w := binfmt.NewWriter(binfmt.KindOrg, orgFormatVersion)
	w.AddUint64s(secOrgMeta, meta)
	st.AddTo(w, secOrgStrOffs, secOrgStrBytes)
	w.AddUint32s(secOrgStates, recs)
	w.AddUint32s(secOrgChildren, children)
	return w, nil
}

// DecodeBinOrg decodes an org container over its lake: the full flavor
// via the direct fast path, the structural flavor via Import. Errors,
// never panics, on corrupt input; every allocation is bounded by the
// input's actual section sizes.
func DecodeBinOrg(l *lake.Lake, data []byte) (*Org, error) {
	c, err := binfmt.New(data)
	if err != nil {
		return nil, err
	}
	defer c.Close()
	return decodeBinOrg(l, c)
}

func decodeBinOrg(l *lake.Lake, c *binfmt.Container) (*Org, error) {
	kind, ver := c.Kind()
	if kind != binfmt.KindOrg {
		return nil, fmt.Errorf("core: binorg decode container kind %d, want %d", kind, binfmt.KindOrg)
	}
	if ver != orgFormatVersion {
		return nil, fmt.Errorf("core: binorg decode format version %d, want %d", ver, orgFormatVersion)
	}
	meta, err := c.Uint64s(secOrgMeta)
	if err != nil {
		return nil, err
	}
	if len(meta) != orgMetaWords {
		return nil, fmt.Errorf("core: binorg decode meta has %d words, want %d", len(meta), orgMetaWords)
	}
	switch meta[orgMetaFlags] {
	case orgFlagFull:
		return decodeBinOrgFull(l, c, meta)
	case 0:
		ex, err := decodeBinExportedOrg(c, meta)
		if err != nil {
			return nil, err
		}
		return Import(l, ex)
	default:
		return nil, fmt.Errorf("core: binorg decode unknown flags %#x", meta[orgMetaFlags])
	}
}

// binOrgShape is the structure shared by both decode flavors: state
// records, validated child ref spans, and the edge insertion order
// that reproduces Import.
type binOrgShape struct {
	recs     []uint32
	children []uint32
	strs     *binfmt.StringTable
	n        int
	root     int
	order    []int // state indices by ascending max-distance-to-leaf, stable
}

func readBinOrgShape(c *binfmt.Container, meta []uint64) (*binOrgShape, error) {
	recs, err := c.Uint32s(secOrgStates)
	if err != nil {
		return nil, err
	}
	if len(recs)%stateRecWords != 0 {
		return nil, fmt.Errorf("core: binorg decode state section length %d not a record multiple", len(recs))
	}
	n := len(recs) / stateRecWords
	if n == 0 {
		return nil, fmt.Errorf("core: binorg decode has no states")
	}
	if uint64(n) != meta[orgMetaStates] {
		return nil, fmt.Errorf("core: binorg decode meta claims %d states, section has %d", meta[orgMetaStates], n)
	}
	if meta[orgMetaRoot] >= uint64(n) {
		return nil, fmt.Errorf("core: binorg decode root ref %d out of range", meta[orgMetaRoot])
	}
	strs, err := binfmt.ReadStringTable(c, secOrgStrOffs, secOrgStrBytes)
	if err != nil {
		return nil, err
	}
	children, err := c.Uint32s(secOrgChildren)
	if err != nil {
		return nil, err
	}
	sh := &binOrgShape{recs: recs, children: children, strs: strs, n: n, root: int(meta[orgMetaRoot])}

	// Validate every child span and ref, and build the reverse
	// adjacency for the depth computation.
	parents := make([][]int32, n)
	remaining := make([]int, n)
	for i := 0; i < n; i++ {
		off := uint64(recs[i*stateRecWords+stateRecChildOff])
		cnt := uint64(recs[i*stateRecWords+stateRecChildLen])
		if off+cnt < off || off+cnt > uint64(len(children)) {
			return nil, fmt.Errorf("core: binorg decode state %d child span [%d,+%d) outside section", i, off, cnt)
		}
		for _, ref := range children[off : off+cnt] {
			if ref >= uint32(n) {
				return nil, fmt.Errorf("core: binorg decode state %d child ref %d out of range", i, ref)
			}
			parents[ref] = append(parents[ref], int32(i))
		}
		remaining[i] = int(cnt)
	}

	// Max-distance-to-leaf per state, Kahn-style so a cycle is detected
	// instead of panicking later in Validate's Topo.
	depth := make([]int, n)
	queue := make([]int, 0, n)
	for i := 0; i < n; i++ {
		if remaining[i] == 0 {
			queue = append(queue, i)
		}
	}
	processed := 0
	for len(queue) > 0 {
		i := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		processed++
		for _, p := range parents[i] {
			if depth[i]+1 > depth[p] {
				depth[p] = depth[i] + 1
			}
			remaining[p]--
			if remaining[p] == 0 {
				queue = append(queue, int(p))
			}
		}
	}
	if processed != n {
		return nil, fmt.Errorf("core: binorg decode edge cycle (%d of %d states ordered)", processed, n)
	}

	// Stable counting sort by depth reproduces Import's child-before-
	// parent link order, with file order as the tie-break.
	maxd := 0
	for _, d := range depth {
		if d > maxd {
			maxd = d
		}
	}
	pos := make([]int, maxd+2)
	for _, d := range depth {
		pos[d+1]++
	}
	for d := 1; d < len(pos); d++ {
		pos[d] += pos[d-1]
	}
	order := make([]int, n)
	for i := 0; i < n; i++ {
		order[pos[depth[i]]] = i
		pos[depth[i]]++
	}
	sh.order = order
	return sh, nil
}

// childRefs returns state i's validated child span.
func (sh *binOrgShape) childRefs(i int) []uint32 {
	off := sh.recs[i*stateRecWords+stateRecChildOff]
	cnt := sh.recs[i*stateRecWords+stateRecChildLen]
	return sh.children[off : uint64(off)+uint64(cnt)]
}

// decodeBinOrgFull is the cold-start fast path: materialize states,
// install topics straight from the (possibly mmap'd) vector block into
// the arena, restore run accumulators and support tables verbatim, and
// link edges in Import's order — no JSON reflection, no propagation.
func decodeBinOrgFull(l *lake.Lake, c *binfmt.Container, meta []uint64) (*Org, error) {
	if l.Dim() == 0 {
		return nil, fmt.Errorf("core: binorg decode needs computed lake topics")
	}
	dim := int(meta[orgMetaDim])
	if dim != l.Dim() {
		return nil, fmt.Errorf("core: binorg decode dim %d, lake has %d", dim, l.Dim())
	}
	gamma := math.Float64frombits(meta[orgMetaGamma])
	if !(gamma > 0) {
		return nil, fmt.Errorf("core: binorg decode gamma %v not positive", gamma)
	}
	sh, err := readBinOrgShape(c, meta)
	if err != nil {
		return nil, err
	}
	support, err := c.Uint32s(secOrgSupport)
	if err != nil {
		return nil, err
	}
	if len(support)%2 != 0 {
		return nil, fmt.Errorf("core: binorg decode support section length %d not pair-aligned", len(support))
	}
	vecs, err := c.Float64s(secOrgVecs)
	if err != nil {
		return nil, err
	}
	if len(vecs) != sh.n*dim {
		return nil, fmt.Errorf("core: binorg decode vec block has %d floats, want %d", len(vecs), sh.n*dim)
	}
	runCounts, err := c.Uint64s(secOrgRunCounts)
	if err != nil {
		return nil, err
	}
	if uint64(len(runCounts)) != meta[orgMetaNonLeaf] {
		return nil, fmt.Errorf("core: binorg decode meta claims %d non-leaf states, run section has %d", meta[orgMetaNonLeaf], len(runCounts))
	}
	runSums, err := c.Float64s(secOrgRunSums)
	if err != nil {
		return nil, err
	}
	if len(runSums) != len(runCounts)*dim {
		return nil, fmt.Errorf("core: binorg decode run sum block has %d floats, want %d", len(runSums), len(runCounts)*dim)
	}

	attrByName := make(map[string]lake.AttrID, len(l.Attrs))
	for _, a := range l.Attrs {
		if a.Removed {
			continue
		}
		attrByName[a.QualifiedName(l)] = a.ID
	}

	o := &Org{
		Lake:     l,
		Gamma:    gamma,
		Root:     -1,
		leafOf:   make(map[lake.AttrID]StateID),
		tagState: make(map[string]StateID),
		arena:    newTopicArena(dim),
	}

	// Pass 1: materialize states, mirroring Import.
	for i := 0; i < sh.n; i++ {
		kf := sh.recs[i*stateRecWords+stateRecKind]
		if kf&^uint32(0xff|stateHasTopic) != 0 {
			return nil, fmt.Errorf("core: binorg decode state %d has unknown flags %#x", i, kf)
		}
		switch Kind(kf & 0xff) {
		case KindLeaf:
			name, err := sh.strs.Lookup(sh.recs[i*stateRecWords+stateRecName])
			if err != nil {
				return nil, err
			}
			a, ok := attrByName[name]
			if !ok {
				return nil, fmt.Errorf("core: binorg decode references unknown attribute %q", name)
			}
			s := o.newState(KindLeaf)
			s.Attr = a
			o.leafOf[a] = s.ID
		case KindTag:
			tag, err := sh.strs.Lookup(sh.recs[i*stateRecWords+stateRecName])
			if err != nil {
				return nil, err
			}
			s := o.newState(KindTag)
			s.Tags = []string{tag}
			s.support = make(map[lake.AttrID]int)
			s.run = vector.NewRunning(dim)
			o.tagState[tag] = s.ID
		case KindInterior:
			o.newInterior()
		default:
			return nil, fmt.Errorf("core: binorg decode state %d has unknown kind %d", i, kf&0xff)
		}
	}

	// Topics: one copy each, section block → arena slot, through the
	// setTopic funnel (which recomputes the norm over the installed
	// values, bit-identical to the JSON path's).
	for i := 0; i < sh.n; i++ {
		if sh.recs[i*stateRecWords+stateRecKind]&stateHasTopic != 0 {
			o.States[i].setTopic(vecs[i*dim : (i+1)*dim])
		}
	}

	// Support tables and run accumulators, cross-checked against the
	// lake's attribute populations so a crafted file cannot smuggle in
	// counts that would panic RemoveWeighted during later search.
	nli := 0
	for i := 0; i < sh.n; i++ {
		s := o.States[i]
		rec := sh.recs[i*stateRecWords:]
		off, cnt := uint64(rec[stateRecSupOff]), uint64(rec[stateRecSupLen])
		if s.Kind == KindLeaf {
			if cnt != 0 {
				return nil, fmt.Errorf("core: binorg decode leaf %d has support pairs", i)
			}
			continue
		}
		if off+cnt < off || (off+cnt)*2 > uint64(len(support)) {
			return nil, fmt.Errorf("core: binorg decode state %d support span [%d,+%d) outside section", i, off, cnt)
		}
		for j := off; j < off+cnt; j++ {
			leafRef, n := support[2*j], support[2*j+1]
			if leafRef >= uint32(sh.n) || o.States[leafRef].Kind != KindLeaf {
				return nil, fmt.Errorf("core: binorg decode state %d support ref %d is not a leaf", i, leafRef)
			}
			a := o.States[leafRef].Attr
			if _, dup := s.support[a]; dup {
				return nil, fmt.Errorf("core: binorg decode state %d has duplicate support for attr %d", i, a)
			}
			if n == 0 {
				return nil, fmt.Errorf("core: binorg decode state %d has zero support for attr %d", i, a)
			}
			s.support[a] = int(n)
		}
		want := 0
		for a := range s.support {
			_, c := o.attrAccumulator(a)
			want += c
		}
		if uint64(want) != runCounts[nli] {
			return nil, fmt.Errorf("core: binorg decode state %d run count %d, lake population says %d", i, runCounts[nli], want)
		}
		s.run.AddWeighted(runSums[nli*dim:(nli+1)*dim], want)
		nli++
	}
	if uint64(nli) != meta[orgMetaNonLeaf] {
		return nil, fmt.Errorf("core: binorg decode found %d non-leaf states, meta claims %d", nli, meta[orgMetaNonLeaf])
	}

	// Edges, in Import's exact order: states by ascending depth, each
	// state's children in stored order. Support is already restored, so
	// addEdge (no propagation) suffices.
	for _, i := range sh.order {
		for _, ref := range sh.childRefs(i) {
			o.addEdge(StateID(i), StateID(ref))
		}
	}

	o.Root = StateID(sh.root)
	o.attrs = o.States[o.Root].Domain()
	o.buildAttrIndex()
	if err := o.Validate(); err != nil {
		return nil, fmt.Errorf("core: binorg decode produced invalid organization: %w", err)
	}
	return o, nil
}

// decodeBinExportedOrg rebuilds the structural snapshot a checkpoint
// container carries; the caller feeds it to Import.
func decodeBinExportedOrg(c *binfmt.Container, meta []uint64) (*ExportedOrg, error) {
	sh, err := readBinOrgShape(c, meta)
	if err != nil {
		return nil, err
	}
	ex := &ExportedOrg{
		Gamma:  math.Float64frombits(meta[orgMetaGamma]),
		Root:   sh.root,
		States: make([]ExportedState, sh.n),
	}
	for i := 0; i < sh.n; i++ {
		rec := sh.recs[i*stateRecWords:]
		if rec[stateRecKind]&^uint32(0xff|stateHasTopic) != 0 {
			return nil, fmt.Errorf("core: binorg decode state %d has unknown flags %#x", i, rec[stateRecKind])
		}
		es := ExportedState{ID: i, DomainSize: int(rec[stateRecSupLen])}
		if es.Label, err = sh.strs.Lookup(rec[stateRecSupOff]); err != nil {
			return nil, err
		}
		switch Kind(rec[stateRecKind] & 0xff) {
		case KindLeaf:
			es.Kind = "leaf"
			if es.Attr, err = sh.strs.Lookup(rec[stateRecName]); err != nil {
				return nil, err
			}
		case KindTag:
			es.Kind = "tag"
			tag, err := sh.strs.Lookup(rec[stateRecName])
			if err != nil {
				return nil, err
			}
			es.Tags = []string{tag}
		case KindInterior:
			es.Kind = "interior"
		default:
			return nil, fmt.Errorf("core: binorg decode state %d has unknown kind %d", i, rec[stateRecKind]&0xff)
		}
		for _, ref := range sh.childRefs(i) {
			es.Children = append(es.Children, int(ref))
		}
		ex.States[i] = es
	}
	return ex, nil
}

// EncodeBinMultiDim serializes every dimension of m as a nested full-
// fidelity org container plus the tag grouping.
func EncodeBinMultiDim(m *MultiDim) (*binfmt.Writer, error) {
	if len(m.Orgs) == 0 {
		return nil, fmt.Errorf("core: binorg encode multidim with no dimensions")
	}
	st := binfmt.NewStringTableBuilder()
	groupLens := make([]uint32, 0, len(m.TagGroups))
	var groupRefs []uint32
	for _, g := range m.TagGroups {
		groupLens = append(groupLens, uint32(len(g)))
		for _, tag := range g {
			groupRefs = append(groupRefs, st.Ref(tag))
		}
	}
	w := binfmt.NewWriter(binfmt.KindMultiDim, orgFormatVersion)
	w.AddUint64s(secMDMeta, []uint64{uint64(len(m.Orgs)), uint64(len(m.TagGroups))})
	st.AddTo(w, secMDStrOffs, secMDStrBytes)
	w.AddUint32s(secMDGroupLens, groupLens)
	w.AddUint32s(secMDGroupRefs, groupRefs)
	for i, o := range m.Orgs {
		blob, err := EncodeBinOrg(o)
		if err != nil {
			return nil, fmt.Errorf("core: binorg encode dimension %d: %w", i, err)
		}
		w.Add(uint32(secMDOrgBase+i), blob)
	}
	return w, nil
}

// SaveBinMultiDim atomically writes m to path in the binary format.
func SaveBinMultiDim(path string, m *MultiDim) error {
	w, err := EncodeBinMultiDim(m)
	if err != nil {
		return err
	}
	return binfmt.WriteFile(path, w)
}

// DecodeBinMultiDim decodes a multi-dimensional org container over its
// lake.
func DecodeBinMultiDim(l *lake.Lake, c *binfmt.Container) (*MultiDim, error) {
	kind, ver := c.Kind()
	if kind != binfmt.KindMultiDim {
		return nil, fmt.Errorf("core: binorg decode container kind %d, want %d", kind, binfmt.KindMultiDim)
	}
	if ver != orgFormatVersion {
		return nil, fmt.Errorf("core: binorg decode format version %d, want %d", ver, orgFormatVersion)
	}
	meta, err := c.Uint64s(secMDMeta)
	if err != nil {
		return nil, err
	}
	if len(meta) != 2 {
		return nil, fmt.Errorf("core: binorg decode multidim meta has %d words, want 2", len(meta))
	}
	norgs, ngroups := meta[0], meta[1]
	if norgs == 0 {
		return nil, fmt.Errorf("core: binorg decode multidim with no dimensions")
	}
	strs, err := binfmt.ReadStringTable(c, secMDStrOffs, secMDStrBytes)
	if err != nil {
		return nil, err
	}
	groupLens, err := c.Uint32s(secMDGroupLens)
	if err != nil {
		return nil, err
	}
	groupRefs, err := c.Uint32s(secMDGroupRefs)
	if err != nil {
		return nil, err
	}
	if uint64(len(groupLens)) != ngroups {
		return nil, fmt.Errorf("core: binorg decode multidim meta claims %d groups, section has %d", ngroups, len(groupLens))
	}
	groups := make([][]string, len(groupLens))
	next := 0
	for gi, glen := range groupLens {
		if next+int(glen) < next || next+int(glen) > len(groupRefs) {
			return nil, fmt.Errorf("core: binorg decode multidim group %d overruns the tag refs", gi)
		}
		g := make([]string, glen)
		for i := range g {
			if g[i], err = strs.Lookup(groupRefs[next+i]); err != nil {
				return nil, err
			}
		}
		groups[gi] = g
		next += int(glen)
	}
	if next != len(groupRefs) {
		return nil, fmt.Errorf("core: binorg decode multidim has %d dangling tag refs", len(groupRefs)-next)
	}
	m := &MultiDim{Lake: l, TagGroups: groups}
	for i := uint64(0); i < norgs; i++ {
		blob, err := c.Section(uint32(secMDOrgBase + i))
		if err != nil {
			return nil, fmt.Errorf("core: binorg decode dimension %d: %w", i, err)
		}
		o, err := DecodeBinOrg(l, blob)
		if err != nil {
			return nil, fmt.Errorf("core: binorg decode dimension %d: %w", i, err)
		}
		m.Orgs = append(m.Orgs, o)
	}
	return m, nil
}

// LoadMultiDim loads a multi-dimensional organization from either
// format, sniffing the container magic: binary files take the mmap'd
// fast path, anything else falls back to the JSON reader. This is the
// one entry point cold-start callers (navserver, the facade) need.
func LoadMultiDim(l *lake.Lake, path string) (*MultiDim, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	var head [8]byte
	_, rerr := io.ReadFull(f, head[:])
	if rerr == nil && binfmt.IsMagic(head[:]) {
		_ = f.Close() // read-only sniff handle
		c, err := binfmt.Open(path)
		if err != nil {
			return nil, err
		}
		defer c.Close()
		return DecodeBinMultiDim(l, c)
	}
	defer f.Close()
	if rerr != nil && !errors.Is(rerr, io.ErrUnexpectedEOF) && !errors.Is(rerr, io.EOF) {
		return nil, rerr
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return nil, err
	}
	return ReadMultiDim(l, f)
}
