package core

import (
	"context"
	"math"
	"os"
	"path/filepath"
	"testing"

	"lakenav/internal/faultinject"
	"lakenav/internal/synth"
)

func restartsLake(t *testing.T) *synth.TagCloud {
	t.Helper()
	tc, err := synth.GenerateTagCloud(synth.SmallTagCloudConfig())
	if err != nil {
		t.Fatal(err)
	}
	return tc
}

// Canceling a multi-restart search mid-flight must degrade gracefully:
// the in-flight restart stops at its next boundary, later restarts are
// skipped, and the result is the best organization found so far with
// Truncated set — never an error, never nil. This pins the bug where
// OptimizeRestarts ignored cancellation entirely and ran every
// remaining restart to completion.
func TestOptimizeRestartsContextCancelMidRestart(t *testing.T) {
	tc := restartsLake(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	build := func() (*Org, error) { return NewClustered(tc.Lake, BuildConfig{}) }
	cfg := OptimizeConfig{
		MaxIterations: 200,
		RepFraction:   0.1,
		Seed:          1,
		Probe:         faultinject.CancelAtIteration(cancel, 5),
	}
	org, stats, err := OptimizeRestartsContext(ctx, build, cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	if org == nil || stats == nil {
		t.Fatal("canceled restarts returned nil result")
	}
	if !stats.Truncated {
		t.Fatal("canceled restarts not marked truncated")
	}
	if err := org.Validate(); err != nil {
		t.Fatalf("best-so-far organization invalid: %v", err)
	}
	if stats.FinalEff < stats.InitialEff-1e-12 {
		t.Errorf("best-so-far below initial effectiveness: %v -> %v",
			stats.InitialEff, stats.FinalEff)
	}
}

// Cancellation during a later restart keeps the completed restarts'
// best: the truncated result equals what the same seeds produce when
// only the completed restarts run.
func TestOptimizeRestartsContextKeepsCompletedBest(t *testing.T) {
	tc := restartsLake(t)
	base := OptimizeConfig{MaxIterations: 40, RepFraction: 0.1, Seed: 1}

	// Reference: the first two restarts, uncanceled.
	ref, refStats, err := OptimizeRestartsContext(context.Background(),
		func() (*Org, error) { return NewClustered(tc.Lake, BuildConfig{}) }, base, 2)
	if err != nil {
		t.Fatal(err)
	}
	if refStats.Truncated {
		t.Fatal("reference restarts truncated")
	}

	// Canceled run: restarts 0 and 1 complete, the build for restart 2
	// pulls the plug, so restart 2 contributes only its initial state.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	calls := 0
	build := func() (*Org, error) {
		calls++
		if calls == 3 {
			cancel()
		}
		return NewClustered(tc.Lake, BuildConfig{})
	}
	org, stats, err := OptimizeRestartsContext(ctx, build, base, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Truncated {
		t.Fatal("canceled run not marked truncated")
	}
	if calls > 3 {
		t.Errorf("restarts after cancellation still ran (%d builds)", calls)
	}
	if err := org.Validate(); err != nil {
		t.Fatal(err)
	}
	if math.Abs(stats.FinalEff-refStats.FinalEff) > 1e-12 {
		t.Errorf("truncated best %v != completed-restarts best %v",
			stats.FinalEff, refStats.FinalEff)
	}
	_ = ref
}

// Each restart must checkpoint to its own file. Before the fix every
// restart shared cfg.Checkpoint.Path, so restart r clobbered restart
// r-1's snapshot and a resume could continue one restart's search from
// another's state. The derived paths carry each restart's own seed.
func TestRestartCheckpointsDoNotCollide(t *testing.T) {
	tc := restartsLake(t)
	dir := t.TempDir()
	base := filepath.Join(dir, "search.ck")
	const restarts = 3
	cfg := OptimizeConfig{
		MaxIterations: 400,
		Window:        200,
		Seed:          11,
		Checkpoint:    &CheckpointConfig{Path: base, EveryAccepted: 1},
	}
	_, stats, err := OptimizeRestartsContext(context.Background(),
		func() (*Org, error) { return NewClustered(tc.Lake, BuildConfig{}) }, cfg, restarts)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Truncated {
		t.Fatal("uncanceled restarts truncated")
	}
	// The shared base path must stay untouched…
	if _, err := os.Stat(base); !os.IsNotExist(err) {
		t.Errorf("restarts wrote to the shared base path %s", base)
	}
	// …and every restart's own file must exist with that restart's seed.
	for r := 0; r < restarts; r++ {
		path := RestartCheckpointPath(base, r)
		ck, err := LoadCheckpoint(path)
		if err != nil {
			t.Fatalf("restart %d checkpoint: %v", r, err)
		}
		want := cfg.Seed + int64(r)*104729
		if ck.Config.Seed != want {
			t.Errorf("restart %d checkpoint seed %d, want %d (clobbered by another restart?)",
				r, ck.Config.Seed, want)
		}
	}
}

// A single-restart run keeps the caller's exact checkpoint path — the
// suffix only appears when there is more than one restart to separate.
func TestSingleRestartKeepsBasePath(t *testing.T) {
	tc := restartsLake(t)
	dir := t.TempDir()
	base := filepath.Join(dir, "single.ck")
	cfg := OptimizeConfig{
		MaxIterations: 400,
		Window:        200,
		Seed:          11,
		Checkpoint:    &CheckpointConfig{Path: base, EveryAccepted: 1},
	}
	_, _, err := OptimizeRestartsContext(context.Background(),
		func() (*Org, error) { return NewClustered(tc.Lake, BuildConfig{}) }, cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(base); err != nil {
		t.Errorf("single restart did not checkpoint to the base path: %v", err)
	}
}

// Multi-dimensional builds route Restarts through the per-dimension
// searches and clean up every per-restart checkpoint file on untruncated
// completion.
func TestMultiDimRestarts(t *testing.T) {
	tc := restartsLake(t)
	dir := t.TempDir()
	base := filepath.Join(dir, "multi.ck")
	m, stats, err := BuildMultiDimContext(context.Background(), tc.Lake, MultiDimConfig{
		K:          2,
		Optimize:   &OptimizeConfig{MaxIterations: 40, RepFraction: 0.1},
		Seed:       3,
		Restarts:   2,
		Checkpoint: &CheckpointConfig{Path: base, EveryAccepted: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.Truncated {
		t.Fatal("uncanceled build truncated")
	}
	for i := range m.Orgs {
		if err := m.Orgs[i].Validate(); err != nil {
			t.Fatalf("dimension %d: %v", i, err)
		}
		if stats[i] == nil {
			t.Fatalf("dimension %d: no stats", i)
		}
	}
	left, err := filepath.Glob(base + "*")
	if err != nil {
		t.Fatal(err)
	}
	if len(left) != 0 {
		t.Errorf("checkpoint files left after clean completion: %v", left)
	}
}
