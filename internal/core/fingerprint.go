package core

import (
	"encoding/binary"
	"hash/fnv"
	"io"
	"math"
)

// Fingerprint hashes every bit of semantic state an organization
// carries — structure, edge insertion order (Parents included, since
// it steers future search trajectories), topic vector and norm bits,
// run accumulator bits, and support tables — into one 64-bit FNV-1a
// value. Two organizations with equal fingerprints navigate, evaluate,
// and optimize identically. Live states are renumbered densely so the
// value is invariant under tombstones, which makes it the golden-hash
// oracle for "binary decode ≡ JSON load": both paths must land on the
// same fingerprint, bit for bit.
func (o *Org) Fingerprint() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	w64 := func(x uint64) {
		binary.LittleEndian.PutUint64(buf[:], x)
		_, _ = h.Write(buf[:]) // fnv-1a cannot fail
	}
	wstr := func(s string) {
		w64(uint64(len(s)))
		_, _ = io.WriteString(h, s) // fnv-1a cannot fail
	}

	dense := make(map[StateID]uint64, len(o.States))
	live := make([]*State, 0, len(o.States))
	for _, s := range o.States {
		if s.deleted {
			continue
		}
		dense[s.ID] = uint64(len(live))
		live = append(live, s)
	}

	w64(math.Float64bits(o.Gamma))
	w64(uint64(len(live)))
	w64(dense[o.Root])
	for _, s := range live {
		w64(uint64(s.Kind))
		if s.Kind == KindLeaf {
			wstr(o.Lake.Attr(s.Attr).QualifiedName(o.Lake))
		}
		w64(uint64(len(s.Tags)))
		for _, t := range s.Tags {
			wstr(t)
		}
		w64(uint64(len(s.Children)))
		for _, c := range s.Children {
			w64(dense[c])
		}
		w64(uint64(len(s.Parents)))
		for _, p := range s.Parents {
			w64(dense[p])
		}
		w64(uint64(len(s.topic)))
		for _, f := range s.topic {
			w64(math.Float64bits(f))
		}
		w64(math.Float64bits(s.topicNorm))
		if s.run != nil {
			w64(1)
			w64(uint64(s.run.Count()))
			for _, f := range s.run.Sum() {
				w64(math.Float64bits(f))
			}
		} else {
			w64(0)
		}
		if s.Kind != KindLeaf {
			dom := s.Domain()
			w64(uint64(len(dom)))
			for _, a := range dom {
				wstr(o.Lake.Attr(a).QualifiedName(o.Lake))
				w64(uint64(s.support[a]))
			}
		}
	}
	return h.Sum64()
}

// Fingerprint folds the tag grouping and every dimension's org
// fingerprint into one value; see Org.Fingerprint.
func (m *MultiDim) Fingerprint() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	w64 := func(x uint64) {
		binary.LittleEndian.PutUint64(buf[:], x)
		_, _ = h.Write(buf[:]) // fnv-1a cannot fail
	}
	w64(uint64(len(m.TagGroups)))
	for _, g := range m.TagGroups {
		w64(uint64(len(g)))
		for _, t := range g {
			w64(uint64(len(t)))
			_, _ = io.WriteString(h, t) // fnv-1a cannot fail
		}
	}
	w64(uint64(len(m.Orgs)))
	for _, o := range m.Orgs {
		w64(o.Fingerprint())
	}
	return h.Sum64()
}
