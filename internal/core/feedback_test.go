package core

import (
	"math"
	"math/rand"
	"testing"

	"lakenav/vector"
)

func feedbackOrg(t *testing.T) *Org {
	t.Helper()
	l := testLake(t)
	o, err := NewFlat(l, BuildConfig{})
	if err != nil {
		t.Fatal(err)
	}
	return o
}

func TestNewFeedbackValidation(t *testing.T) {
	o := feedbackOrg(t)
	if _, err := NewFeedback(o, 0); err == nil {
		t.Error("zero prior accepted")
	}
	if _, err := NewFeedback(o, -1); err == nil {
		t.Error("negative prior accepted")
	}
}

func TestFeedbackNoObservationsMatchesModel(t *testing.T) {
	o := feedbackOrg(t)
	f, err := NewFeedback(o, 10)
	if err != nil {
		t.Fatal(err)
	}
	topic := vector.Vector{1, 0, 0, 0}
	model := o.TransitionProbs(o.Root, topic)
	blended := f.TransitionProbs(o.Root, topic)
	for i := range model {
		if math.Abs(model[i]-blended[i]) > 1e-12 {
			t.Fatalf("blended[%d] = %v, model %v without observations", i, blended[i], model[i])
		}
	}
}

func TestFeedbackShiftsTowardObservations(t *testing.T) {
	o := feedbackOrg(t)
	f, err := NewFeedback(o, 5)
	if err != nil {
		t.Fatal(err)
	}
	topic := vector.Vector{1, 0, 0, 0}
	root := o.State(o.Root)
	// Hammer the last child (whatever it is).
	target := root.Children[len(root.Children)-1]
	for i := 0; i < 100; i++ {
		if err := f.Observe(o.Root, target); err != nil {
			t.Fatal(err)
		}
	}
	model := o.TransitionProbs(o.Root, topic)
	blended := f.TransitionProbs(o.Root, topic)
	var ti int
	for i, c := range root.Children {
		if c == target {
			ti = i
		}
	}
	if blended[ti] <= model[ti] {
		t.Errorf("observed child prob %v not above model %v", blended[ti], model[ti])
	}
	if blended[ti] < 0.9 {
		t.Errorf("100 observations vs prior 5 should dominate: %v", blended[ti])
	}
	// Distribution still sums to 1.
	var sum float64
	for _, p := range blended {
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("blended distribution sums to %v", sum)
	}
}

func TestFeedbackObserveValidatesEdges(t *testing.T) {
	o := feedbackOrg(t)
	f, _ := NewFeedback(o, 1)
	leaf := o.Leaf(o.Attrs()[0])
	if err := f.Observe(leaf, o.Root); err == nil {
		t.Error("nonexistent edge accepted")
	}
}

func TestFeedbackObservePath(t *testing.T) {
	o := feedbackOrg(t)
	f, _ := NewFeedback(o, 1)
	topic := vector.Vector{1, 0, 0, 0}
	path := o.Walk(topic, rand.New(rand.NewSource(1)))
	if err := f.ObservePath(path); err != nil {
		t.Fatal(err)
	}
	if got := f.Observations(); got != float64(len(path)-1) {
		t.Errorf("Observations = %v, want %d", got, len(path)-1)
	}
}

func TestFeedbackDecay(t *testing.T) {
	o := feedbackOrg(t)
	f, _ := NewFeedback(o, 1)
	target := o.State(o.Root).Children[0]
	for i := 0; i < 8; i++ {
		f.Observe(o.Root, target)
	}
	f.Decay(0.5)
	if got := f.Observations(); math.Abs(got-4) > 1e-9 {
		t.Errorf("Observations after decay = %v, want 4", got)
	}
	// Decaying to nothing clears rows entirely.
	for i := 0; i < 40; i++ {
		f.Decay(0.1)
	}
	if f.Observations() != 0 {
		t.Errorf("Observations after heavy decay = %v", f.Observations())
	}
	// Back to pure model.
	topic := vector.Vector{0, 1, 0, 0}
	model := o.TransitionProbs(o.Root, topic)
	blended := f.TransitionProbs(o.Root, topic)
	for i := range model {
		if math.Abs(model[i]-blended[i]) > 1e-12 {
			t.Fatal("decayed feedback does not match model")
		}
	}
}

func TestFeedbackDecayValidation(t *testing.T) {
	o := feedbackOrg(t)
	f, _ := NewFeedback(o, 1)
	for _, factor := range []float64{0, -0.5, 1.5} {
		if err := f.Decay(factor); err == nil {
			t.Errorf("Decay(%v) returned nil error", factor)
		}
	}
	if err := f.Decay(1); err != nil {
		t.Errorf("Decay(1): %v", err)
	}
}

func TestFeedbackReachProbs(t *testing.T) {
	l := testLake(t)
	o, err := NewClustered(l, BuildConfig{})
	if err != nil {
		t.Fatal(err)
	}
	f, _ := NewFeedback(o, 2)
	topic := vector.Vector{1, 0, 0, 0}
	base := o.ReachProbs(topic)
	blended := f.ReachProbs(topic)
	for id := range base {
		if math.Abs(base[id]-blended[id]) > 1e-12 {
			t.Fatal("unobserved feedback reach differs from model reach")
		}
	}
	// Steer all mass at the root toward one child; its subtree's reach
	// must rise.
	root := o.State(o.Root)
	target := root.Children[0]
	for i := 0; i < 200; i++ {
		f.Observe(o.Root, target)
	}
	blended = f.ReachProbs(topic)
	if o.State(target).Kind != KindLeaf && blended[target] <= base[target] {
		t.Errorf("steered child reach %v not above base %v", blended[target], base[target])
	}
}

func TestFeedbackEffectivenessMatchesModelUnobserved(t *testing.T) {
	l := testLake(t)
	o, err := NewClustered(l, BuildConfig{})
	if err != nil {
		t.Fatal(err)
	}
	f, _ := NewFeedback(o, 3)
	if a, b := f.Effectiveness(), o.Effectiveness(); math.Abs(a-b) > 1e-12 {
		t.Errorf("unobserved feedback eff %v != model %v", a, b)
	}
}

// Observed counts are per-edge, not per-intent, so concentrated usage
// toward one attribute raises that attribute's blended discovery
// probability — at the expense of intents the traffic ignores. This is
// the Dirichlet blending behaving as designed.
func TestFeedbackConcentratedUsageBoostsTarget(t *testing.T) {
	l := testLake(t)
	o, err := NewClustered(l, BuildConfig{})
	if err != nil {
		t.Fatal(err)
	}
	f, _ := NewFeedback(o, 1)
	target := o.Attrs()[0]
	topic := o.State(o.Leaf(target)).Topic()
	base := o.LeafProb(target, topic, o.ReachProbs(topic))
	// All traffic walks greedily to the target and its leaf.
	for rep := 0; rep < 50; rep++ {
		path := o.Walk(topic, nil)
		if path[len(path)-1] != o.Leaf(target) {
			// Greedy walk may end at a different leaf; force the exact
			// path by observing the leaf edge from its tag parent.
			f.ObservePath(path[:len(path)-1])
			tagParent := o.State(o.Leaf(target)).Parents[0]
			if o.hasEdge(tagParent, o.Leaf(target)) {
				f.Observe(tagParent, o.Leaf(target))
			}
			continue
		}
		if err := f.ObservePath(path); err != nil {
			t.Fatal(err)
		}
	}
	got := f.LeafProb(target, topic, f.ReachProbs(topic))
	if got <= base {
		t.Errorf("concentrated usage leaf prob %v not above model %v", got, base)
	}
}
