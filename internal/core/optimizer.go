package core

import (
	"fmt"
	"math"
	"math/rand"
	"os"
	"sort"
	"time"

	"lakenav/vector"
)

// OptimizeConfig controls the local search of Sec 3.3–3.4.
type OptimizeConfig struct {
	// RepFraction in (0, 1) enables the representative approximation at
	// that fraction of attributes (the paper uses 0.10); other values
	// evaluate exactly.
	RepFraction float64
	// MaxIterations caps the number of proposed operations. Zero means
	// 2000.
	MaxIterations int
	// Window is the plateau length: the search stops after this many
	// consecutive proposals without significant improvement (the paper
	// uses 50). Zero means 50.
	Window int
	// MinRelImprovement is the relative effectiveness gain that counts
	// as significant. Zero means 1e-3.
	MinRelImprovement float64
	// LeafProposals bounds how many lowest-reachability leaves get a
	// proposal per traversal; leaf ops mirror metadata enrichment and
	// are the most numerous states, so they are sampled. Zero means 25;
	// negative disables leaf proposals.
	LeafProposals int
	// AcceptExponent controls the downhill-acceptance rule. Negative
	// (the default) is greedy: only non-worsening operations are
	// accepted. Positive values accept a worse organization with
	// probability (P(T|O')/P(T|O))^AcceptExponent, so 1 is the paper's
	// Eq 9 Metropolis rule. We measured Eq 9 to be too hot on every
	// workload we generate: near-neutral downhill moves (ratio ~0.95)
	// vastly outnumber uphill ones and are accepted ~95% of the time, so
	// the walk erodes the organization faster than it improves it and
	// the best-seen state is simply the starting point. The acceptance
	// ablation bench sweeps this knob; greedy wins everywhere we tried.
	AcceptExponent float64
	// Seed drives proposal and acceptance randomness.
	Seed int64
}

func (c *OptimizeConfig) defaults() {
	if c.MaxIterations == 0 {
		c.MaxIterations = 2000
	}
	if c.Window == 0 {
		c.Window = 50
	}
	if c.MinRelImprovement == 0 {
		c.MinRelImprovement = 1e-3
	}
	if c.LeafProposals == 0 {
		c.LeafProposals = 25
	}
	if c.AcceptExponent == 0 {
		c.AcceptExponent = -1 // greedy
	}
}

// OptimizeStats reports what the search did; the per-iteration visit
// fractions feed the Figure 3 experiment.
type OptimizeStats struct {
	Iterations int
	Accepted   int
	Rejected   int
	InitialEff float64
	FinalEff   float64
	Duration   time.Duration
	// StatesVisitedFrac[i] is the fraction of live non-leaf states
	// re-evaluated at iteration i (pruning effectiveness, Fig 3b).
	StatesVisitedFrac []float64
	// AttrsVisitedFrac[i] is the fraction of organized attributes whose
	// discovery probability was re-evaluated at iteration i (Fig 3a).
	AttrsVisitedFrac []float64
}

// Optimize runs the local search on org in place: repeated downward
// traversals propose ADD_PARENT / DELETE_PARENT modifications on states
// ordered from lowest to highest reachability, accepted by the
// Metropolis rule of Eq 9, until the effectiveness plateaus.
func Optimize(org *Org, cfg OptimizeConfig) (*OptimizeStats, error) {
	cfg.defaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	ev, err := NewEvaluator(org, cfg.RepFraction, rng)
	if err != nil {
		return nil, err
	}
	return optimizeWithEvaluator(org, ev, cfg, rng)
}

func optimizeWithEvaluator(org *Org, ev *Evaluator, cfg OptimizeConfig, rng *rand.Rand) (*OptimizeStats, error) {
	start := time.Now()
	stats := &OptimizeStats{InitialEff: ev.Effectiveness()}
	best := ev.Effectiveness()
	sinceImprove := 0
	// Eq 9 accepts mildly-downhill moves with probability equal to the
	// effectiveness ratio, so the walk can drift away from good
	// organizations (a DELETE_PARENT cascade is hard to rebuild). The
	// returned organization is the best one seen: accepted-but-not-
	// improving operations are logged and unwound at termination.
	bestEff := best
	var sinceBest []*UndoLog

	done := func() bool {
		return stats.Iterations >= cfg.MaxIterations || sinceImprove >= cfg.Window
	}

	for !done() {
		proposedThisTraversal := 0
		// One downward traversal: states grouped by level, lowest
		// reachability first within each level.
		meanReach := ev.MeanReach()
		levels := org.Levels()
		byLevel := make(map[int][]StateID)
		maxLevel := 0
		for _, s := range org.States {
			if s.deleted || s.ID == org.Root {
				continue
			}
			l := levels[s.ID]
			if l < 0 {
				continue
			}
			byLevel[l] = append(byLevel[l], s.ID)
			if l > maxLevel {
				maxLevel = l
			}
		}
		for l := 1; l <= maxLevel && !done(); l++ {
			states := byLevel[l]
			sort.Slice(states, func(i, j int) bool {
				if meanReach[states[i]] != meanReach[states[j]] {
					return meanReach[states[i]] < meanReach[states[j]]
				}
				return states[i] < states[j]
			})
			leafBudget := cfg.LeafProposals
			for _, sid := range states {
				if done() {
					break
				}
				s := org.State(sid)
				if s.deleted {
					continue // eliminated earlier in this traversal
				}
				if s.Kind == KindLeaf {
					if leafBudget <= 0 {
						continue
					}
					if ev.Approximate() && ev.IsRepresentativeLeaf(sid) {
						// A leaf op on a representative's own leaf is
						// booked for all its members — a systematic
						// overestimate; see IsRepresentativeLeaf.
						continue
					}
					leafBudget--
				}
				undo, accepted, proposed := proposeAndDecide(org, ev, sid, levels, meanReach, rng, cfg.AcceptExponent)
				if !proposed {
					continue
				}
				proposedThisTraversal++
				stats.Iterations++
				stats.StatesVisitedFrac = append(stats.StatesVisitedFrac,
					frac(ev.LastStatesVisited, ev.TotalStates()))
				stats.AttrsVisitedFrac = append(stats.AttrsVisitedFrac,
					frac(ev.LastAttrsVisited, ev.TotalAttrs()))
				if accepted {
					stats.Accepted++
				} else {
					stats.Rejected++
				}
				eff := ev.Effectiveness()
				if accepted {
					if eff > bestEff {
						bestEff = eff
						sinceBest = sinceBest[:0]
					} else {
						sinceBest = append(sinceBest, undo)
					}
				}
				if eff > best*(1+cfg.MinRelImprovement) {
					best = eff
					sinceImprove = 0
				} else {
					sinceImprove++
				}
				// Structure may have changed; stale levels within a
				// traversal are tolerable (they only guide candidate
				// choice), and reachability is refreshed per traversal.
			}
		}
		if proposedThisTraversal == 0 {
			// No applicable operation anywhere: a fixed point.
			break
		}
	}

	// Unwind to the best organization seen.
	for i := len(sinceBest) - 1; i >= 0; i-- {
		org.Undo(sinceBest[i])
	}
	stats.FinalEff = bestEff
	stats.Duration = time.Since(start)
	if err := orgSane(org); err != nil {
		return stats, err
	}
	return stats, nil
}

func frac(num, den int) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}

// orgSane is a cheap post-search invariant check (full Validate is
// O(V·|D|) and reserved for tests).
func orgSane(o *Org) error {
	if o.States[o.Root].deleted {
		return fmt.Errorf("core: optimizer deleted the root")
	}
	o.Topo() // panics on cycle
	return nil
}

// proposeAndDecide proposes candidate operations for state sid,
// evaluates each with the pruned incremental evaluator, keeps the best,
// and accepts or rejects it by Eq 9. Evaluating a small candidate set
// instead of a single argmax-reachability pick is what makes the walk
// find the (numerous but individually small) improving moves; the
// candidate set still consists solely of the paper's two operations.
// It returns the applied operation's undo log when accepted, and
// reports (accepted, proposed).
func proposeAndDecide(org *Org, ev *Evaluator, sid StateID, levels []int, meanReach []float64, rng *rand.Rand, acceptExp float64) (*UndoLog, bool, bool) {
	candidates := pickOperations(org, sid, levels, meanReach, rng)
	if len(candidates) == 0 {
		return nil, false, false
	}
	oldEff := ev.Effectiveness()

	// Trial-evaluate every candidate, remembering the best. The visit
	// counters reported for the iteration are those of the chosen
	// candidate — the quantity Figure 3 tracks is how much of the
	// organization one modification forces the evaluator to touch.
	bestIdx, bestEff := -1, -1.0
	statesVisited, attrsVisited := 0, 0
	for i, apply := range candidates {
		cs := org.BeginChanges()
		undo := apply()
		org.EndChanges()
		eff := ev.Reevaluate(cs)
		if eff > bestEff {
			bestEff, bestIdx = eff, i
			statesVisited, attrsVisited = ev.LastStatesVisited, ev.LastAttrsVisited
		}
		org.Undo(undo)
		ev.Rollback()
	}
	ev.LastStatesVisited = statesVisited
	ev.LastAttrsVisited = attrsVisited

	accept := bestEff >= oldEff
	if !accept && acceptExp > 0 && oldEff > 0 {
		accept = rng.Float64() < math.Pow(bestEff/oldEff, acceptExp)
	}
	if debugOptimizer {
		fmt.Printf("debug: state %d kind %v cands %d old %.6f best %.6f accept %v\n",
			sid, org.State(sid).Kind, len(candidates), oldEff, bestEff, accept)
	}
	if !accept {
		return nil, false, true
	}
	// Re-apply the winning candidate for real.
	cs := org.BeginChanges()
	undo := candidates[bestIdx]()
	org.EndChanges()
	ev.Reevaluate(cs)
	ev.Commit()
	return undo, true, true
}

// pickOperations assembles the candidate operations for sid. Interior
// and tag states get ADD_PARENT candidates one level up — the most
// reachable legal state (the paper's rule), the most topic-similar one,
// and a random one — plus DELETE_PARENT of their least reachable
// parent; leaves analogously over tag states.
func pickOperations(org *Org, sid StateID, levels []int, meanReach []float64, rng *rand.Rand) []func() *UndoLog {
	s := org.State(sid)
	var ops []func() *UndoLog
	addedParent := map[StateID]bool{}
	addParentOp := func(n StateID) {
		if n < 0 || addedParent[n] {
			return
		}
		addedParent[n] = true
		ops = append(ops, func() *UndoLog { return org.AddParentOp(n, sid) })
	}

	if s.Kind == KindLeaf {
		var cands []StateID
		for _, ts := range org.TagStates() {
			if org.CanAddParent(ts, sid) {
				cands = append(cands, ts)
			}
		}
		addParentOp(argmaxID(cands, func(id StateID) float64 { return meanReach[id] }))
		addParentOp(argmaxID(cands, func(id StateID) float64 {
			return vectorCos(org.States[id].topic, s.topic)
		}))
		if t := worstLeafParent(org, sid, meanReach); t >= 0 {
			ops = append(ops, func() *UndoLog { return org.RemoveLeafParentOp(t, sid) })
		}
	} else {
		cands := legalNewParents(org, sid, levels)
		addParentOp(argmaxID(cands, func(id StateID) float64 { return meanReach[id] }))
		addParentOp(argmaxID(cands, func(id StateID) float64 {
			return vectorCos(org.States[id].topic, s.topic)
		}))
		if len(cands) > 0 {
			addParentOp(cands[rng.Intn(len(cands))])
		}
		if r := worstParent(org, sid, meanReach); r >= 0 {
			ops = append(ops, func() *UndoLog { return org.DeleteParentOp(sid, r) })
		}
	}
	return ops
}

// legalNewParents lists the interior states exactly one level above sid
// that can legally become its parent.
func legalNewParents(org *Org, sid StateID, levels []int) []StateID {
	l := levels[sid]
	if l <= 0 {
		return nil
	}
	var out []StateID
	for _, cand := range org.States {
		if cand.deleted || cand.Kind != KindInterior {
			continue
		}
		if levels[cand.ID] != l-1 {
			continue
		}
		if org.CanAddParent(cand.ID, sid) {
			out = append(out, cand.ID)
		}
	}
	return out
}

// argmaxID returns the id maximizing score, or -1 for an empty slice.
func argmaxID(ids []StateID, score func(StateID) float64) StateID {
	best, bm := StateID(-1), 0.0
	for _, id := range ids {
		if s := score(id); best == -1 || s > bm {
			bm, best = s, id
		}
	}
	return best
}

// worstParent returns sid's least reachable eliminable parent, or -1.
func worstParent(org *Org, sid StateID, meanReach []float64) StateID {
	best, bm := StateID(-1), 2.0
	for _, p := range org.State(sid).Parents {
		if !org.CanDeleteParent(sid, p) {
			continue
		}
		if m := meanReach[p]; m < bm {
			bm, best = m, p
		}
	}
	return best
}

// bestLeafParent returns the most reachable tag state that can adopt
// leaf sid, or -1.
func bestLeafParent(org *Org, sid StateID, meanReach []float64) StateID {
	best, bm := StateID(-1), -1.0
	for _, ts := range org.TagStates() {
		if m := meanReach[ts]; m > bm && org.CanAddParent(ts, sid) {
			bm, best = m, ts
		}
	}
	return best
}

// worstLeafParent returns the least reachable droppable tag-state parent
// of leaf sid, or -1.
func worstLeafParent(org *Org, sid StateID, meanReach []float64) StateID {
	best, bm := StateID(-1), 2.0
	for _, p := range org.State(sid).Parents {
		if !org.CanRemoveLeafParent(p, sid) {
			continue
		}
		if m := meanReach[p]; m < bm {
			bm, best = m, p
		}
	}
	return best
}

// vectorCos is a nil-safe cosine for candidate scoring.
func vectorCos(a, b vector.Vector) float64 {
	if a == nil || b == nil {
		return 0
	}
	return vector.Cosine(a, b)
}

// debugOptimizer enables proposal tracing (LAKENAV_DEBUG_OPT=1).
var debugOptimizer = os.Getenv("LAKENAV_DEBUG_OPT") == "1"

// OptimizeRestarts runs the local search restarts times with different
// seeds, each on a fresh copy of the initial organization built by
// build, and returns the most effective result. Greedy acceptance makes
// individual runs cheap but local; independent restarts are the
// standard remedy. The build function is called once per restart (plus
// once for the returned organization when a later restart wins).
func OptimizeRestarts(build func() (*Org, error), cfg OptimizeConfig, restarts int) (*Org, *OptimizeStats, error) {
	if restarts < 1 {
		restarts = 1
	}
	var bestOrg *Org
	var bestStats *OptimizeStats
	for r := 0; r < restarts; r++ {
		org, err := build()
		if err != nil {
			return nil, nil, err
		}
		runCfg := cfg
		runCfg.Seed = cfg.Seed + int64(r)*104729
		stats, err := Optimize(org, runCfg)
		if err != nil {
			return nil, nil, err
		}
		if bestStats == nil || stats.FinalEff > bestStats.FinalEff {
			bestOrg, bestStats = org, stats
		}
	}
	return bestOrg, bestStats, nil
}
