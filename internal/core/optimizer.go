package core

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"os"
	"sort"
	"time"

	"lakenav/internal/lake"
)

// OptimizeConfig controls the local search of Sec 3.3–3.4.
type OptimizeConfig struct {
	// RepFraction in (0, 1) enables the representative approximation at
	// that fraction of attributes (the paper uses 0.10); other values
	// evaluate exactly.
	RepFraction float64
	// MaxIterations caps the number of proposed operations. Zero means
	// 2000.
	MaxIterations int
	// Window is the plateau length: the search stops after this many
	// consecutive proposals without significant improvement (the paper
	// uses 50). Zero means 50.
	Window int
	// MinRelImprovement is the relative effectiveness gain that counts
	// as significant. Zero means 1e-3.
	MinRelImprovement float64
	// LeafProposals bounds how many lowest-reachability leaves get a
	// proposal per traversal; leaf ops mirror metadata enrichment and
	// are the most numerous states, so they are sampled. Zero means 25;
	// negative disables leaf proposals.
	LeafProposals int
	// Workers bounds the evaluator's goroutine pool for the per-query
	// loops; 0 selects GOMAXPROCS. Evaluation results — and therefore
	// the search trajectory — are identical for every value, so Workers
	// is not part of the checkpointed trajectory config.
	Workers int
	// AcceptExponent controls the downhill-acceptance rule. Negative
	// (the default) is greedy: only non-worsening operations are
	// accepted. Positive values accept a worse organization with
	// probability (P(T|O')/P(T|O))^AcceptExponent, so 1 is the paper's
	// Eq 9 Metropolis rule. We measured Eq 9 to be too hot on every
	// workload we generate: near-neutral downhill moves (ratio ~0.95)
	// vastly outnumber uphill ones and are accepted ~95% of the time, so
	// the walk erodes the organization faster than it improves it and
	// the best-seen state is simply the starting point. The acceptance
	// ablation bench sweeps this knob; greedy wins everywhere we tried.
	AcceptExponent float64
	// Seed drives proposal and acceptance randomness.
	Seed int64
	// Checkpoint, when non-nil, periodically snapshots the search so a
	// killed build can resume where it left off (ResumeOptimizeContext).
	// Only OptimizeContext supports it: resuming and boundary
	// reconstruction may return a different *Org than the input.
	Checkpoint *CheckpointConfig
	// Probe, when non-nil, is invoked after every completed iteration
	// with the running iteration count. It exists for fault-injection
	// tests (cancel at iteration k, latency injection); production
	// callers leave it nil.
	Probe func(iteration int)
	// Progress, when non-nil, receives one ProgressEvent per completed
	// iteration plus a final event (Final set) when the search stops.
	// It is invoked synchronously on the search goroutine — and, in
	// multi-dimensional builds, concurrently from each dimension's
	// goroutine — so implementations must be goroutine-safe and fast.
	// Progress is observation only: it can never change the search
	// trajectory, so (like Workers) it is not part of the checkpointed
	// config.
	Progress func(ProgressEvent)
}

// ProgressEvent is one observation of a running local search, shaped
// for NDJSON emission (`lakenav organize -progress`) and for gauge
// export (navserver /metrics during background builds).
type ProgressEvent struct {
	// Dim is the dimension index in a multi-dimensional build.
	Dim int `json:"dim"`
	// Restart is the restart index in a multi-restart search.
	Restart int `json:"restart"`
	// Iteration counts proposed operations so far (monotone within one
	// search; resumed searches include pre-checkpoint work).
	Iteration int `json:"iteration"`
	// Accepted and Rejected partition Iteration.
	Accepted int `json:"accepted"`
	Rejected int `json:"rejected"`
	// CurrentEff is P(T|O) of the organization the walk is on;
	// BestEff is the best value seen so far.
	CurrentEff float64 `json:"current_eff"`
	BestEff    float64 `json:"best_eff"`
	// ElapsedMS is wall-clock time since this search process started
	// (excluding pre-checkpoint time for resumed searches).
	ElapsedMS float64 `json:"elapsed_ms"`
	// Checkpoints counts snapshot writes so far in this run.
	Checkpoints int `json:"checkpoints"`
	// Final marks the one closing event of a search; Truncated on a
	// final event reports a search stopped by cancellation.
	Final     bool `json:"final,omitempty"`
	Truncated bool `json:"truncated,omitempty"`
}

// RuntimeConfig carries the knobs of a resumed search that are not
// part of the checkpointed trajectory: they change how the search runs
// (pool size, observation hooks), never where it goes.
type RuntimeConfig struct {
	// Workers bounds the evaluator pool; 0 selects GOMAXPROCS.
	Workers int
	// Progress receives per-iteration events (see OptimizeConfig).
	Progress func(ProgressEvent)
	// Probe is the fault-injection test hook (see OptimizeConfig).
	Probe func(iteration int)
}

func (c *OptimizeConfig) defaults() {
	if c.MaxIterations == 0 {
		c.MaxIterations = 2000
	}
	if c.Window == 0 {
		c.Window = 50
	}
	if c.MinRelImprovement == 0 {
		c.MinRelImprovement = 1e-3
	}
	if c.LeafProposals == 0 {
		c.LeafProposals = 25
	}
	if c.AcceptExponent == 0 {
		c.AcceptExponent = -1 // greedy
	}
	if c.Checkpoint != nil {
		c.Checkpoint.defaults()
	}
}

// savedConfig is the checkpointed form of the trajectory-shaping knobs.
func (c *OptimizeConfig) savedConfig() SearchConfig {
	sc := SearchConfig{
		RepFraction:       c.RepFraction,
		MaxIterations:     c.MaxIterations,
		Window:            c.Window,
		MinRelImprovement: c.MinRelImprovement,
		LeafProposals:     c.LeafProposals,
		AcceptExponent:    c.AcceptExponent,
		Seed:              c.Seed,
	}
	if c.Checkpoint != nil {
		sc.CheckpointEvery = c.Checkpoint.EveryAccepted
	}
	return sc
}

// OptimizeStats reports what the search did; the per-iteration visit
// fractions feed the Figure 3 experiment.
type OptimizeStats struct {
	Iterations int
	Accepted   int
	Rejected   int
	InitialEff float64
	FinalEff   float64
	Duration   time.Duration
	// Truncated marks a search stopped early by context cancellation or
	// deadline: the returned organization is the best one seen so far,
	// not the converged result.
	Truncated bool
	// Resumed marks a search continued from a checkpoint; Iterations,
	// Accepted, and Rejected include the pre-checkpoint work.
	Resumed bool
	// Checkpoints counts the snapshots written during this run.
	Checkpoints int
	// StatesVisitedFrac[i] is the fraction of live non-leaf states
	// re-evaluated at iteration i (pruning effectiveness, Fig 3b).
	StatesVisitedFrac []float64
	// AttrsVisitedFrac[i] is the fraction of organized attributes whose
	// discovery probability was re-evaluated at iteration i (Fig 3a).
	AttrsVisitedFrac []float64
}

// Optimize runs the local search on org in place: repeated downward
// traversals propose ADD_PARENT / DELETE_PARENT modifications on states
// ordered from lowest to highest reachability, accepted by the
// Metropolis rule of Eq 9, until the effectiveness plateaus. It is the
// uncancellable in-place form; cfg.Checkpoint must be nil (checkpoint
// reconstruction can replace the organization, which an in-place caller
// would not observe — use OptimizeContext).
func Optimize(org *Org, cfg OptimizeConfig) (*OptimizeStats, error) {
	if cfg.Checkpoint != nil {
		return nil, fmt.Errorf("core: Optimize cannot checkpoint; use OptimizeContext")
	}
	_, stats, err := OptimizeContext(context.Background(), org, cfg)
	return stats, err
}

// OptimizeContext runs the local search with cancellation and optional
// checkpointing. On cancel or deadline the search stops at the next
// iteration boundary and degrades gracefully: it returns the best
// organization seen so far with stats.Truncated set, not an error.
// The returned *Org is the search result; it equals the input org
// unless checkpointing reconstructed or a resume snapshot won, so
// callers must use the return value rather than the argument.
func OptimizeContext(ctx context.Context, org *Org, cfg OptimizeConfig) (*Org, *OptimizeStats, error) {
	cfg.defaults()
	src := newSearchSource(cfg.Seed)
	rng := newSearchRand(src)
	ev, err := NewEvaluatorWorkers(org, cfg.RepFraction, rng, cfg.Workers)
	if err != nil {
		return nil, nil, err
	}
	eff := ev.Effectiveness()
	s := &search{
		ctx:        ctx,
		cfg:        cfg,
		org:        org,
		ev:         ev,
		src:        src,
		rng:        rng,
		stats:      &OptimizeStats{InitialEff: eff},
		plateauRef: eff,
		bestEff:    eff,
	}
	if cfg.Checkpoint != nil {
		s.dim = cfg.Checkpoint.Dim
		s.tagGroup = cfg.Checkpoint.TagGroup
	}
	return s.run()
}

// ResumeOptimizeContext continues a search from a checkpoint over the
// lake it was built on. The search runs under the checkpointed config
// (including its seed and checkpoint cadence) and keeps checkpointing
// to the file the checkpoint was loaded from. Because checkpoints are
// written at reconstruction boundaries, the resumed trajectory is
// identical to the one an uninterrupted process would have followed:
// only the work since the last checkpoint is redone.
func ResumeOptimizeContext(ctx context.Context, l *lake.Lake, ck *Checkpoint) (*Org, *OptimizeStats, error) {
	return ResumeOptimizeRuntime(ctx, l, ck, RuntimeConfig{})
}

// ResumeOptimizeRuntime is ResumeOptimizeContext with explicit runtime
// knobs. The checkpoint dictates the trajectory (seed, window, cadence
// — the resumed result is identical either way); rt carries only the
// observation hooks and pool size the checkpoint deliberately does not
// store.
func ResumeOptimizeRuntime(ctx context.Context, l *lake.Lake, ck *Checkpoint, rt RuntimeConfig) (*Org, *OptimizeStats, error) {
	cfg := ck.searchConfig()
	cfg.Workers = rt.Workers
	cfg.Progress = rt.Progress
	cfg.Probe = rt.Probe
	cfg.defaults()
	org, ev, src, err := rebuildSearchState(l, cfg, ck)
	if err != nil {
		return nil, nil, err
	}
	s := &search{
		ctx: ctx,
		cfg: cfg,
		org: org,
		ev:  ev,
		src: src,
		rng: newSearchRand(src),
		stats: &OptimizeStats{
			Iterations: ck.Iterations,
			Accepted:   ck.Accepted,
			Rejected:   ck.Rejected,
			InitialEff: ck.InitialEff,
			Resumed:    true,
		},
		plateauRef:       ck.PlateauRef,
		sinceImprove:     ck.SinceImprove,
		bestEff:          ck.BestEff,
		bestSnapshot:     ck.Best,
		lastCkptAccepted: ck.Accepted,
		dim:              ck.Dim,
		tagGroup:         ck.TagGroup,
	}
	return s.run()
}

// search is the live state of one local-search run.
type search struct {
	ctx context.Context
	cfg OptimizeConfig
	org *Org
	ev  *Evaluator
	src *searchSource
	rng *rand.Rand

	stats   *OptimizeStats
	started time.Time

	// plateauRef and sinceImprove drive the Window termination rule.
	plateauRef   float64
	sinceImprove int

	// bestEff is the best effectiveness seen; sinceBest logs accepted-
	// but-not-improving operations so termination can unwind to the best
	// organization. After a checkpoint reconstruction the trail cannot
	// reach the pre-checkpoint best (state IDs were recompacted), so the
	// best lives on as bestSnapshot until the search beats it.
	bestEff      float64
	sinceBest    []*UndoLog
	bestSnapshot *ExportedOrg

	lastCkptAccepted int

	// dim and tagGroup stamp checkpoints with their dimension identity.
	dim      int
	tagGroup []string
}

func (s *search) canceled() bool { return s.ctx.Err() != nil }

func (s *search) done() bool {
	return s.canceled() ||
		s.stats.Iterations >= s.cfg.MaxIterations ||
		s.sinceImprove >= s.cfg.Window
}

func (s *search) run() (*Org, *OptimizeStats, error) {
	s.started = time.Now()
	for !s.done() {
		proposed, err := s.traverse()
		if err != nil {
			return nil, nil, err
		}
		if err := s.maybeCheckpoint(); err != nil {
			return nil, nil, err
		}
		if proposed == 0 {
			// No applicable operation anywhere: a fixed point.
			break
		}
	}
	return s.finish()
}

// traverse performs one downward traversal: states grouped by level,
// lowest reachability first within each level, each getting at most one
// proposed operation.
func (s *search) traverse() (int, error) {
	org, ev, cfg := s.org, s.ev, s.cfg
	proposed := 0
	meanReach := ev.MeanReach()
	levels := org.Levels()
	byLevel := make(map[int][]StateID)
	maxLevel := 0
	for _, st := range org.States {
		if st.deleted || st.ID == org.Root {
			continue
		}
		l := levels[st.ID]
		if l < 0 {
			continue
		}
		byLevel[l] = append(byLevel[l], st.ID)
		if l > maxLevel {
			maxLevel = l
		}
	}
	for l := 1; l <= maxLevel && !s.done(); l++ {
		states := byLevel[l]
		sort.Slice(states, func(i, j int) bool {
			if meanReach[states[i]] != meanReach[states[j]] {
				return meanReach[states[i]] < meanReach[states[j]]
			}
			return states[i] < states[j]
		})
		leafBudget := cfg.LeafProposals
		for _, sid := range states {
			if s.done() {
				break
			}
			st := org.State(sid)
			if st.deleted {
				continue // eliminated earlier in this traversal
			}
			if st.Kind == KindLeaf {
				if leafBudget <= 0 {
					continue
				}
				if ev.Approximate() && ev.IsRepresentativeLeaf(sid) {
					// A leaf op on a representative's own leaf is
					// booked for all its members — a systematic
					// overestimate; see IsRepresentativeLeaf.
					continue
				}
				leafBudget--
			}
			undo, accepted, wasProposed, err := proposeAndDecide(org, ev, sid, levels, meanReach, s.rng, cfg.AcceptExponent)
			if err != nil {
				return proposed, err
			}
			if !wasProposed {
				continue
			}
			proposed++
			s.noteIteration(undo, accepted)
			// Structure may have changed; stale levels within a
			// traversal are tolerable (they only guide candidate
			// choice), and reachability is refreshed per traversal.
		}
	}
	return proposed, nil
}

// noteIteration books one proposed operation into the stats, the
// best-seen trail, and the plateau rule, then fires the test probe.
func (s *search) noteIteration(undo *UndoLog, accepted bool) {
	st := s.stats
	st.Iterations++
	st.StatesVisitedFrac = append(st.StatesVisitedFrac,
		frac(s.ev.LastStatesVisited, s.ev.TotalStates()))
	st.AttrsVisitedFrac = append(st.AttrsVisitedFrac,
		frac(s.ev.LastAttrsVisited, s.ev.TotalAttrs()))
	if accepted {
		st.Accepted++
	} else {
		st.Rejected++
	}
	eff := s.ev.Effectiveness()
	if accepted {
		if eff > s.bestEff {
			s.bestEff = eff
			s.sinceBest = s.sinceBest[:0]
			s.bestSnapshot = nil
		} else {
			s.sinceBest = append(s.sinceBest, undo)
		}
	}
	if eff > s.plateauRef*(1+s.cfg.MinRelImprovement) {
		s.plateauRef = eff
		s.sinceImprove = 0
	} else {
		s.sinceImprove++
	}
	s.emitProgress(eff, false)
	if s.cfg.Probe != nil {
		s.cfg.Probe(st.Iterations)
	}
}

// emitProgress fires the Progress callback with the search's current
// counters. The event is a stack value and the callback is gated on
// nil, so an unobserved search pays one branch per iteration.
func (s *search) emitProgress(currentEff float64, final bool) {
	if s.cfg.Progress == nil {
		return
	}
	st := s.stats
	s.cfg.Progress(ProgressEvent{
		Dim:         s.dim,
		Iteration:   st.Iterations,
		Accepted:    st.Accepted,
		Rejected:    st.Rejected,
		CurrentEff:  currentEff,
		BestEff:     s.bestEff,
		ElapsedMS:   float64(time.Since(s.started)) / float64(time.Millisecond),
		Checkpoints: st.Checkpoints,
		Final:       final,
		Truncated:   final && st.Truncated,
	})
}

// maybeCheckpoint snapshots the search at a traversal boundary once
// enough operations have been accepted since the last snapshot. A
// canceled or finished search does not checkpoint: the last boundary
// file already captures everything a resume may rely on.
func (s *search) maybeCheckpoint() error {
	c := s.cfg.Checkpoint
	if c == nil || s.done() {
		return nil
	}
	if s.stats.Accepted-s.lastCkptAccepted < c.EveryAccepted {
		return nil
	}
	return s.checkpoint()
}

// checkpoint writes the snapshot and reconstructs the live search from
// it, so everything downstream of this boundary is a pure function of
// the checkpoint bytes (see CheckpointConfig).
func (s *search) checkpoint() error {
	cur := s.org.Export()
	// Materialize the best organization by unwinding the trail on the
	// live org; the live org is rebuilt from cur below, so the unwind
	// does not need to be redone.
	best := s.bestSnapshot
	if best == nil && len(s.sinceBest) > 0 {
		for i := len(s.sinceBest) - 1; i >= 0; i-- {
			s.org.Undo(s.sinceBest[i])
		}
		best = s.org.Export()
	}
	ck := &Checkpoint{
		Version:      checkpointVersion,
		Dim:          s.dim,
		TagGroup:     s.tagGroup,
		Config:       s.cfg.savedConfig(),
		Iterations:   s.stats.Iterations,
		Accepted:     s.stats.Accepted,
		Rejected:     s.stats.Rejected,
		SinceImprove: s.sinceImprove,
		PlateauRef:   s.plateauRef,
		InitialEff:   s.stats.InitialEff,
		BestEff:      s.bestEff,
		RNGState:     s.src.State(),
		Current:      cur,
		Best:         best,
		path:         s.cfg.Checkpoint.Path,
		binary:       s.cfg.Checkpoint.Binary,
	}
	if ck.path != "" {
		if err := SaveCheckpoint(ck.path, ck); err != nil {
			return err
		}
	}
	org, ev, src, err := rebuildSearchState(s.org.Lake, s.cfg, ck)
	if err != nil {
		return fmt.Errorf("core: checkpoint reconstruction: %w", err)
	}
	s.org, s.ev, s.src = org, ev, src
	s.rng = newSearchRand(src)
	s.sinceBest = nil
	s.bestSnapshot = ck.Best
	s.lastCkptAccepted = ck.Accepted
	s.stats.Checkpoints++
	return nil
}

// finish unwinds to the best organization seen and seals the stats.
func (s *search) finish() (*Org, *OptimizeStats, error) {
	if s.bestSnapshot != nil {
		// The best predates the last checkpoint reconstruction and is
		// unreachable through the undo trail; rebuild it.
		best, err := Import(s.org.Lake, s.bestSnapshot)
		if err != nil {
			return nil, nil, fmt.Errorf("core: restore best organization: %w", err)
		}
		s.org = best
	} else {
		for i := len(s.sinceBest) - 1; i >= 0; i-- {
			s.org.Undo(s.sinceBest[i])
		}
	}
	s.stats.FinalEff = s.bestEff
	s.stats.Truncated = s.canceled()
	s.stats.Duration = time.Since(s.started)
	s.emitProgress(s.stats.FinalEff, true)
	if err := orgSane(s.org); err != nil {
		return s.org, s.stats, err
	}
	return s.org, s.stats, nil
}

func frac(num, den int) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}

// orgSane is a cheap post-search invariant check (full Validate is
// O(V·|D|) and reserved for tests).
func orgSane(o *Org) error {
	if o.States[o.Root].deleted {
		return fmt.Errorf("core: optimizer deleted the root")
	}
	o.Topo() // panics on cycle
	return nil
}

// proposeAndDecide proposes candidate operations for state sid,
// evaluates each with the pruned incremental evaluator, keeps the best,
// and accepts or rejects it by Eq 9. Evaluating a small candidate set
// instead of a single argmax-reachability pick is what makes the walk
// find the (numerous but individually small) improving moves; the
// candidate set still consists solely of the paper's two operations.
// It returns the applied operation's undo log when accepted, and
// reports (accepted, proposed).
func proposeAndDecide(org *Org, ev *Evaluator, sid StateID, levels []int, meanReach []float64, rng *rand.Rand, acceptExp float64) (*UndoLog, bool, bool, error) {
	candidates := pickOperations(org, sid, levels, meanReach, rng)
	if len(candidates) == 0 {
		return nil, false, false, nil
	}
	oldEff := ev.Effectiveness()

	// Trial-evaluate every candidate, remembering the best. The visit
	// counters reported for the iteration are those of the chosen
	// candidate — the quantity Figure 3 tracks is how much of the
	// organization one modification forces the evaluator to touch.
	bestIdx, bestEff := -1, -1.0
	statesVisited, attrsVisited := 0, 0
	for i, apply := range candidates {
		cs := org.BeginChanges()
		undo := apply()
		org.EndChanges()
		eff := ev.Reevaluate(cs)
		if eff > bestEff {
			bestEff, bestIdx = eff, i
			statesVisited, attrsVisited = ev.LastStatesVisited, ev.LastAttrsVisited
		}
		org.Undo(undo)
		if err := ev.Rollback(); err != nil {
			return nil, false, false, err
		}
	}
	ev.LastStatesVisited = statesVisited
	ev.LastAttrsVisited = attrsVisited

	accept := bestEff >= oldEff
	if !accept && acceptExp > 0 && oldEff > 0 {
		accept = rng.Float64() < math.Pow(bestEff/oldEff, acceptExp)
	}
	if debugOptimizer {
		fmt.Printf("debug: state %d kind %v cands %d old %.6f best %.6f accept %v\n",
			sid, org.State(sid).Kind, len(candidates), oldEff, bestEff, accept)
	}
	if !accept {
		return nil, false, true, nil
	}
	// Re-apply the winning candidate for real.
	cs := org.BeginChanges()
	undo := candidates[bestIdx]()
	org.EndChanges()
	ev.Reevaluate(cs)
	if err := ev.Commit(); err != nil {
		return nil, false, false, err
	}
	return undo, true, true, nil
}

// pickOperations assembles the candidate operations for sid. Interior
// and tag states get ADD_PARENT candidates one level up — the most
// reachable legal state (the paper's rule), the most topic-similar one,
// and a random one — plus DELETE_PARENT of their least reachable
// parent; leaves analogously over tag states.
func pickOperations(org *Org, sid StateID, levels []int, meanReach []float64, rng *rand.Rand) []func() *UndoLog {
	s := org.State(sid)
	var ops []func() *UndoLog
	addedParent := map[StateID]bool{}
	addParentOp := func(n StateID) {
		if n < 0 || addedParent[n] {
			return
		}
		addedParent[n] = true
		ops = append(ops, func() *UndoLog { return org.AddParentOp(n, sid) })
	}

	if s.Kind == KindLeaf {
		var cands []StateID
		for _, ts := range org.TagStates() {
			if org.CanAddParent(ts, sid) {
				cands = append(cands, ts)
			}
		}
		addParentOp(argmaxID(cands, func(id StateID) float64 { return meanReach[id] }))
		addParentOp(argmaxID(cands, func(id StateID) float64 {
			return stateCos(org.States[id], s)
		}))
		if t := worstLeafParent(org, sid, meanReach); t >= 0 {
			ops = append(ops, func() *UndoLog { return org.RemoveLeafParentOp(t, sid) })
		}
	} else {
		cands := legalNewParents(org, sid, levels)
		addParentOp(argmaxID(cands, func(id StateID) float64 { return meanReach[id] }))
		addParentOp(argmaxID(cands, func(id StateID) float64 {
			return stateCos(org.States[id], s)
		}))
		if len(cands) > 0 {
			addParentOp(cands[rng.Intn(len(cands))])
		}
		if r := worstParent(org, sid, meanReach); r >= 0 {
			ops = append(ops, func() *UndoLog { return org.DeleteParentOp(sid, r) })
		}
	}
	return ops
}

// legalNewParents lists the interior states exactly one level above sid
// that can legally become its parent.
func legalNewParents(org *Org, sid StateID, levels []int) []StateID {
	l := levels[sid]
	if l <= 0 {
		return nil
	}
	var out []StateID
	for _, cand := range org.States {
		if cand.deleted || cand.Kind != KindInterior {
			continue
		}
		if levels[cand.ID] != l-1 {
			continue
		}
		if org.CanAddParent(cand.ID, sid) {
			out = append(out, cand.ID)
		}
	}
	return out
}

// argmaxID returns the id maximizing score, or -1 for an empty slice.
func argmaxID(ids []StateID, score func(StateID) float64) StateID {
	best, bm := StateID(-1), 0.0
	for _, id := range ids {
		if s := score(id); best == -1 || s > bm {
			bm, best = s, id
		}
	}
	return best
}

// worstParent returns sid's least reachable eliminable parent, or -1.
func worstParent(org *Org, sid StateID, meanReach []float64) StateID {
	best, bm := StateID(-1), 2.0
	for _, p := range org.State(sid).Parents {
		if !org.CanDeleteParent(sid, p) {
			continue
		}
		if m := meanReach[p]; m < bm {
			bm, best = m, p
		}
	}
	return best
}

// bestLeafParent returns the most reachable tag state that can adopt
// leaf sid, or -1.
func bestLeafParent(org *Org, sid StateID, meanReach []float64) StateID {
	best, bm := StateID(-1), -1.0
	for _, ts := range org.TagStates() {
		if m := meanReach[ts]; m > bm && org.CanAddParent(ts, sid) {
			bm, best = m, ts
		}
	}
	return best
}

// worstLeafParent returns the least reachable droppable tag-state parent
// of leaf sid, or -1.
func worstLeafParent(org *Org, sid StateID, meanReach []float64) StateID {
	best, bm := StateID(-1), 2.0
	for _, p := range org.State(sid).Parents {
		if !org.CanRemoveLeafParent(p, sid) {
			continue
		}
		if m := meanReach[p]; m < bm {
			bm, best = m, p
		}
	}
	return best
}

// debugOptimizer enables proposal tracing (LAKENAV_DEBUG_OPT=1).
var debugOptimizer = os.Getenv("LAKENAV_DEBUG_OPT") == "1"

// OptimizeRestarts runs the local search restarts times with different
// seeds, each on a fresh copy of the initial organization built by
// build, and returns the most effective result. Greedy acceptance makes
// individual runs cheap but local; independent restarts are the
// standard remedy. The build function is called once per restart.
func OptimizeRestarts(build func() (*Org, error), cfg OptimizeConfig, restarts int) (*Org, *OptimizeStats, error) {
	return OptimizeRestartsContext(context.Background(), build, cfg, restarts)
}

// RestartCheckpointPath derives the checkpoint file restart r of a
// multi-restart search writes to: base + ".r<r>". Restarts are
// independent searches with different seeds, so they must never share a
// file — a shared path would have each restart clobber the previous
// one's snapshot, and a resume would then continue restart 0 from
// restart N-1's state.
func RestartCheckpointPath(base string, r int) string {
	return fmt.Sprintf("%s.r%d", base, r)
}

// OptimizeRestartsContext is OptimizeRestarts with cancellation and
// checkpoint support. Cancellation degrades gracefully: the in-flight
// restart stops at its next iteration boundary, later restarts are
// skipped, and the best organization found so far is returned with
// stats.Truncated set — never an error. When cfg.Checkpoint is set and
// restarts > 1, each restart snapshots to its own derived path
// (RestartCheckpointPath), so concurrent progress files never collide.
func OptimizeRestartsContext(ctx context.Context, build func() (*Org, error), cfg OptimizeConfig, restarts int) (*Org, *OptimizeStats, error) {
	if restarts < 1 {
		restarts = 1
	}
	var bestOrg *Org
	var bestStats *OptimizeStats
	for r := 0; r < restarts; r++ {
		if r > 0 && ctx.Err() != nil {
			// Canceled between restarts: the remaining ones are skipped,
			// and the result is best-so-far, marked truncated.
			bestStats.Truncated = true
			break
		}
		org, err := build()
		if err != nil {
			return nil, nil, err
		}
		runCfg := cfg
		runCfg.Seed = cfg.Seed + int64(r)*104729
		if cfg.Progress != nil {
			// Stamp each restart's events with its index so a consumer
			// interleaving them (NDJSON, gauges) can tell the searches
			// apart.
			restart, base := r, cfg.Progress
			runCfg.Progress = func(p ProgressEvent) {
				p.Restart = restart
				base(p)
			}
		}
		if cfg.Checkpoint != nil && cfg.Checkpoint.Path != "" && restarts > 1 {
			ck := *cfg.Checkpoint
			ck.Path = RestartCheckpointPath(cfg.Checkpoint.Path, r)
			runCfg.Checkpoint = &ck
		}
		res, stats, err := OptimizeContext(ctx, org, runCfg)
		if err != nil {
			return nil, nil, err
		}
		if bestStats == nil || stats.FinalEff > bestStats.FinalEff {
			bestOrg, bestStats = res, stats
		}
		if stats.Truncated {
			// The in-flight restart was cut short; whatever won so far is
			// the final answer, and the caller must see the truncation
			// even when an earlier, completed restart holds the best
			// effectiveness.
			bestStats.Truncated = true
			break
		}
	}
	return bestOrg, bestStats, nil
}
