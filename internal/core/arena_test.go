package core

import (
	"math/rand"
	"strings"
	"sync"
	"testing"

	"lakenav/internal/lake"
	"lakenav/internal/synth"
	"lakenav/vector"
)

// The flat topic arena must be transparent: every State.topic is a view
// into the Org's contiguous block, the cached norms mirror the arena's
// norm table (Validate pins both), and every navigation quantity
// computed through the arena fast path is bit-identical to the
// pointer-walking reference.

// TestArenaResidency checks that construction places every topic in the
// arena and that Validate's residency invariants hold on a freshly
// built clustered organization and across committed operations.
func TestArenaResidency(t *testing.T) {
	o := kernelTestOrg(t, 21)
	if o.arena == nil {
		t.Fatal("construction did not create a topic arena")
	}
	for _, s := range o.States {
		if s.deleted || s.topic == nil {
			continue
		}
		if &s.topic[0] != &o.arena.vecs[int(s.ID)*o.arena.dim] {
			t.Fatalf("state %d topic is not arena-resident", s.ID)
		}
	}
	rng := rand.New(rand.NewSource(23))
	for step := 0; step < 8; step++ {
		if _, _, ok := applyRandomOp(o, rng); !ok {
			break
		}
		if err := o.Validate(); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
	}
}

// TestArenaRebindAfterGrowth drives ApplyLakeBatch until the arena's
// backing array must reallocate and checks every pre-existing topic
// view survived the rebind with identical values (Validate additionally
// pins the view identity).
func TestArenaRebindAfterGrowth(t *testing.T) {
	l := testLake(t)
	o, err := NewFlat(l, BuildConfig{})
	if err != nil {
		t.Fatal(err)
	}
	before := make(map[StateID]vector.Vector)
	for _, s := range o.States {
		if s.topic != nil {
			before[s.ID] = s.topic.Clone()
		}
	}
	capBefore := cap(o.arena.vecs)
	for i := 0; cap(o.arena.vecs) == capBefore && i < 64; i++ {
		name := "grow" + strings.Repeat("x", i+1)
		applyBatch(t, l, o, []lake.TableChange{
			{Name: name, Tags: []string{"fishery"}, Attrs: []lake.AttrSpec{
				{Name: "col", Values: []string{"fisha", "fishb"}},
			}},
		}, nil)
	}
	if cap(o.arena.vecs) == capBefore {
		t.Fatal("batches never grew the arena backing array")
	}
	if err := o.Validate(); err != nil {
		t.Fatal(err)
	}
	for id, want := range before {
		got := o.States[id].topic
		if got == nil {
			continue // topic legitimately recomputed to unset
		}
		for i := range want {
			// Interior topics may have changed value (new members joined
			// their domains); leaves must be value-identical.
			if o.States[id].Kind == KindLeaf && got[i] != want[i] {
				t.Fatalf("state %d leaf topic[%d] changed across rebind: %v -> %v", id, i, want[i], got[i])
			}
		}
	}
}

// TestKernelHotPathZeroAllocs pins the arena kernels at zero per-call
// allocations with caller-provided scratch — the property that lets
// evaluator workers run without malloc/GC contention.
func TestKernelHotPathZeroAllocs(t *testing.T) {
	o := kernelTestOrg(t, 31)
	adj := o.adjacency()
	topic := o.State(o.Leaf(o.Attrs()[0])).Topic()
	norm := vector.Norm(topic)
	probs := make([]float64, adj.maxChildren)
	reach := make([]float64, len(o.States))
	attr := o.Attrs()[1]

	if n := testing.AllocsPerRun(100, func() {
		o.transitionsInto(adj, o.Root, topic, norm, probs)
	}); n != 0 {
		t.Errorf("transitionsInto allocates %.1f per call, want 0", n)
	}
	if n := testing.AllocsPerRun(100, func() {
		o.reachProbsInto(topic, norm, reach, probs)
	}); n != 0 {
		t.Errorf("reachProbsInto allocates %.1f per call, want 0", n)
	}
	o.reachProbsInto(topic, norm, reach, probs)
	if n := testing.AllocsPerRun(100, func() {
		o.leafProbInto(attr, topic, norm, reach, probs)
	}); n != 0 {
		t.Errorf("leafProbInto allocates %.1f per call, want 0", n)
	}
}

// TestEvaluatorParityMatrix is the arena-path equivalence matrix: over
// seeds × worker counts × exact/approximate modes, evaluator results
// must be bit-identical (==, not within tolerance) to the workers=1
// run, and the workers=1 run must match the naive pointer-walking
// reference within 1e-12 across a committed operation sequence.
func TestEvaluatorParityMatrix(t *testing.T) {
	for _, seed := range []int64{5, 17} {
		for _, approx := range []bool{false, true} {
			frac := 0.0
			if approx {
				frac = 0.4
			}
			build := func(workers int) (*Org, *Evaluator) {
				o := kernelTestOrg(t, seed)
				var rng *rand.Rand
				if approx {
					rng = rand.New(rand.NewSource(seed + 100))
				}
				ev, err := NewEvaluatorWorkers(o, frac, rng, workers)
				if err != nil {
					t.Fatal(err)
				}
				return o, ev
			}
			oRef, evRef := build(1)
			for _, workers := range []int{2, 4, 8} {
				o, ev := build(workers)
				if ev.Effectiveness() != evRef.Effectiveness() {
					t.Fatalf("seed %d approx %v workers %d: construction eff %v != %v",
						seed, approx, workers, ev.Effectiveness(), evRef.Effectiveness())
				}
				rng := rand.New(rand.NewSource(seed * 7))
				rngRef := rand.New(rand.NewSource(seed * 7))
				for step := 0; step < 8; step++ {
					cs, _, ok := applyRandomOp(o, rng)
					if !ok {
						break
					}
					csRef, _, _ := applyRandomOp(oRef, rngRef)
					if ev.Reevaluate(cs) != evRef.Reevaluate(csRef) {
						t.Fatalf("seed %d approx %v workers %d step %d: eff diverged",
							seed, approx, workers, step)
					}
					for i := range o.Attrs() {
						if ev.AttrProb(i) != evRef.AttrProb(i) {
							t.Fatalf("seed %d approx %v workers %d step %d attr %d: prob diverged",
								seed, approx, workers, step, i)
						}
					}
					mr, mrRef := ev.MeanReach(), evRef.MeanReach()
					for id := range mr {
						if mr[id] != mrRef[id] {
							t.Fatalf("seed %d approx %v workers %d step %d state %d: mean reach diverged",
								seed, approx, workers, step, id)
						}
					}
					ev.Commit()
					evRef.Commit()
				}
				// Reset the reference org for the next worker count by
				// rebuilding it (each worker count replays the same op
				// sequence from the same start).
				oRef, evRef = build(1)
				rngRef = rand.New(rand.NewSource(seed * 7))
				_ = rngRef
			}
			// The serial arena path agrees with the naive reference.
			oN, _ := build(1)
			assertKernelMatchesNaive(t, oN, -1)
		}
	}
}

// TestIsRepresentativeLeafConcurrent is the -race regression for the
// representative-leaf probe: the set is precomputed at construction, so
// concurrent probes (optimizer traversals sharing an evaluator snapshot)
// must not race a lazy initialization.
func TestIsRepresentativeLeafConcurrent(t *testing.T) {
	o := kernelTestOrg(t, 41)
	ev, err := NewEvaluatorWorkers(o, 0.3, rand.New(rand.NewSource(43)), 2)
	if err != nil {
		t.Fatal(err)
	}
	var want int
	for _, s := range o.States {
		if ev.IsRepresentativeLeaf(s.ID) {
			want++
		}
	}
	if want == 0 {
		t.Fatal("no representative leaves — probe not exercised")
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got := 0
			for _, s := range o.States {
				if ev.IsRepresentativeLeaf(s.ID) {
					got++
				}
			}
			if got != want {
				t.Errorf("concurrent probe counted %d representative leaves, want %d", got, want)
			}
		}()
	}
	wg.Wait()
}

// TestStaleEvaluatorFailsLoudly: growing the organization after
// evaluator construction (ApplyLakeBatch) must make MeanReach and
// Reevaluate panic instead of silently scoring the new states
// unreachable (the old `top = len(reach)` clamp masked exactly that).
func TestStaleEvaluatorFailsLoudly(t *testing.T) {
	l := testLake(t)
	o, err := NewFlat(l, BuildConfig{})
	if err != nil {
		t.Fatal(err)
	}
	ev, err := NewEvaluatorWorkers(o, 0, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	ev.MeanReach() // fresh: fine
	cs := applyBatch(t, l, o, []lake.TableChange{
		{Name: "harbors", Tags: []string{"fishery", "port"}, Attrs: []lake.AttrSpec{
			{Name: "dock", Values: []string{"fishdock", "fishpier"}},
		}},
	}, nil)
	if len(o.States) == ev.nStates {
		t.Fatal("batch did not grow the organization — staleness not exercised")
	}
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s on a stale evaluator did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("MeanReach", func() { ev.MeanReach() })
	mustPanic("Reevaluate", func() { ev.Reevaluate(cs) })
}

// TestRollbackLogReleasesOversizedCapacity: a single worst-case
// re-evaluation must not pin its rollback-log capacity forever. Commit
// and Rollback release the backing array when the high-water capacity
// dwarfs the latest use.
func TestRollbackLogReleasesOversizedCapacity(t *testing.T) {
	o := kernelTestOrg(t, 51)
	ev, err := NewEvaluatorWorkers(o, 0, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Small logs below the threshold are kept (steady-state reuse).
	ev.savedReach = make([]savedCell, 64, 1024)
	ev.pending = true
	if err := ev.Commit(); err != nil {
		t.Fatal(err)
	}
	if cap(ev.savedReach) != 1024 {
		t.Fatalf("small log released: cap %d, want 1024", cap(ev.savedReach))
	}
	// Oversized mostly-idle logs are released.
	ev.savedReach = make([]savedCell, 64, savedReachShrinkCap*2)
	ev.pending = true
	if err := ev.Commit(); err != nil {
		t.Fatal(err)
	}
	if cap(ev.savedReach) != 0 {
		t.Fatalf("oversized log kept: cap %d, want 0", cap(ev.savedReach))
	}
	// Oversized but well-used logs are kept.
	ev.savedReach = make([]savedCell, savedReachShrinkCap, savedReachShrinkCap*2)
	ev.pending = true
	if err := ev.Commit(); err != nil {
		t.Fatal(err)
	}
	if cap(ev.savedReach) != savedReachShrinkCap*2 {
		t.Fatalf("well-used log released: cap %d", cap(ev.savedReach))
	}
	// Rollback takes the same path; verify with a real pending cycle so
	// the restore itself still works.
	rng := rand.New(rand.NewSource(53))
	effBefore := ev.Effectiveness()
	cs, u, ok := applyRandomOp(o, rng)
	if !ok {
		t.Fatal("no operation applicable")
	}
	ev.Reevaluate(cs)
	// Inflate the capacity as if a worst-case evaluation had run.
	inflated := make([]savedCell, len(ev.savedReach), savedReachShrinkCap*2)
	copy(inflated, ev.savedReach)
	ev.savedReach = inflated
	o.Undo(u)
	if err := ev.Rollback(); err != nil {
		t.Fatal(err)
	}
	if ev.Effectiveness() != effBefore {
		t.Fatalf("rollback eff %v != %v", ev.Effectiveness(), effBefore)
	}
	if cap(ev.savedReach) != 0 {
		t.Fatalf("rollback kept oversized log: cap %d, want 0", cap(ev.savedReach))
	}
}

// TestSmallTagCloudEvaluatorAgainstNaive runs the benchmark-shaped
// organization (the one the bench gates measure) through a committed
// operation sequence and pins the arena evaluator to the naive
// reference — the same shape the perf claims are made on.
func TestSmallTagCloudEvaluatorAgainstNaive(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark-shape parity is slow")
	}
	tc, err := synth.GenerateTagCloud(synth.SmallTagCloudConfig())
	if err != nil {
		t.Fatal(err)
	}
	o, err := NewClustered(tc.Lake, BuildConfig{})
	if err != nil {
		t.Fatal(err)
	}
	ev, err := NewEvaluatorWorkers(o, 0, nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(61))
	for step := 0; step < 6; step++ {
		cs, _, ok := applyRandomOp(o, rng)
		if !ok {
			break
		}
		ev.Reevaluate(cs)
		ev.Commit()
	}
	fresh, err := NewEvaluatorWorkers(o, 0, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := ev.Effectiveness(), fresh.Effectiveness(); !floatNear(got, want, 1e-9) {
		t.Fatalf("incremental eff %v != fresh %v", got, want)
	}
}

func floatNear(a, b, tol float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= tol
}
