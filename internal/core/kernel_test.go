package core

import (
	"math"
	"math/rand"
	"testing"

	"lakenav/internal/lake"
	"lakenav/internal/synth"
	"lakenav/vector"
)

// Naive reference implementations of the navigation model, written
// directly against vector.Cosine (which recomputes both norms on every
// call). The production path goes through the similarity kernel and the
// cached per-state norms; these references are what the kernel must
// agree with.

func naiveChildTransitions(o *Org, s StateID, topic vector.Vector) []float64 {
	children := o.States[s].Children
	if len(children) == 0 {
		return nil
	}
	probs := make([]float64, len(children))
	scale := o.Gamma / float64(len(children))
	maxLogit := math.Inf(-1)
	for i, c := range children {
		probs[i] = scale * vector.Cosine(o.States[c].topic, topic)
		if probs[i] > maxLogit {
			maxLogit = probs[i]
		}
	}
	var sum float64
	for i := range probs {
		probs[i] = math.Exp(probs[i] - maxLogit)
		sum += probs[i]
	}
	for i := range probs {
		probs[i] /= sum
	}
	return probs
}

func naiveReachProbs(o *Org, topic vector.Vector) []float64 {
	reach := make([]float64, len(o.States))
	reach[o.Root] = 1
	for _, id := range o.Topo() {
		s := o.States[id]
		if s.Kind == KindLeaf || reach[id] == 0 || s.Kind == KindTag {
			continue
		}
		probs := naiveChildTransitions(o, id, topic)
		for i, c := range s.Children {
			if o.States[c].Kind != KindLeaf {
				reach[c] += reach[id] * probs[i]
			}
		}
	}
	return reach
}

func naiveLeafProb(o *Org, a lake.AttrID, topic vector.Vector, reach []float64) float64 {
	leaf, ok := o.leafOf[a]
	if !ok {
		return 0
	}
	var p float64
	for _, t := range o.States[leaf].Parents {
		if reach[t] == 0 {
			continue
		}
		probs := naiveChildTransitions(o, t, topic)
		for i, c := range o.States[t].Children {
			if c == leaf {
				p += reach[t] * probs[i]
				break
			}
		}
	}
	return p
}

func naiveEffectiveness(o *Org) float64 {
	probs := make([]float64, len(o.attrs))
	for i, a := range o.attrs {
		leaf, ok := o.leafOf[a]
		if !ok {
			continue
		}
		topic := o.States[leaf].topic
		probs[i] = naiveLeafProb(o, a, topic, naiveReachProbs(o, topic))
	}
	var sum float64
	for _, t := range o.Lake.Tables {
		sum += o.TableProb(t, probs)
	}
	if len(o.Lake.Tables) == 0 {
		return 0
	}
	return sum / float64(len(o.Lake.Tables))
}

// kernelTestOrg builds a clustered organization over a small seeded
// synthetic lake — large enough to have multi-level structure, small
// enough that full naive evaluations stay cheap.
func kernelTestOrg(t *testing.T, seed int64) *Org {
	t.Helper()
	cfg := synth.SmallTagCloudConfig()
	cfg.Tags = 16
	cfg.Attributes = 90
	cfg.MaxValues = 60
	cfg.Dim = 16
	cfg.SuperTopics = 4
	cfg.Seed = seed
	tc, err := synth.GenerateTagCloud(cfg)
	if err != nil {
		t.Fatal(err)
	}
	o, err := NewClustered(tc.Lake, BuildConfig{})
	if err != nil {
		t.Fatal(err)
	}
	return o
}

// assertKernelMatchesNaive compares every kernel-path quantity against
// its naive reference on the organization's current shape.
func assertKernelMatchesNaive(t *testing.T, o *Org, step int) {
	t.Helper()
	const tol = 1e-12
	// Per-state transition distributions under a few query topics.
	var queryTopics []vector.Vector
	for _, a := range o.Attrs() {
		queryTopics = append(queryTopics, o.State(o.Leaf(a)).topic)
		if len(queryTopics) == 5 {
			break
		}
	}
	for _, topic := range queryTopics {
		for _, s := range o.States {
			if s.deleted || s.Kind == KindLeaf {
				continue
			}
			got := o.childTransitions(s.ID, topic)
			want := naiveChildTransitions(o, s.ID, topic)
			for i := range want {
				if math.Abs(got[i]-want[i]) > tol {
					t.Fatalf("step %d state %d child %d: kernel %v != naive %v",
						step, s.ID, i, got[i], want[i])
				}
			}
		}
		gotReach := o.ReachProbs(topic)
		wantReach := naiveReachProbs(o, topic)
		for id := range wantReach {
			if math.Abs(gotReach[id]-wantReach[id]) > tol {
				t.Fatalf("step %d state %d: kernel reach %v != naive %v",
					step, id, gotReach[id], wantReach[id])
			}
		}
	}
	// Per-attribute discovery probabilities and the full objective.
	probs := o.AttrDiscoveryProbs()
	for i, a := range o.Attrs() {
		leaf := o.State(o.Leaf(a))
		want := naiveLeafProb(o, a, leaf.topic, naiveReachProbs(o, leaf.topic))
		if math.Abs(probs[i]-want) > tol {
			t.Fatalf("step %d attr %d: kernel P(A|O) %v != naive %v", step, i, probs[i], want)
		}
	}
	if got, want := o.Effectiveness(), naiveEffectiveness(o); math.Abs(got-want) > tol {
		t.Fatalf("step %d: kernel effectiveness %v != naive %v", step, got, want)
	}
}

// The kernel's central property: with cached norms, every navigation
// quantity — transition softmax, reach, discovery probability,
// effectiveness — agrees with the naive two-Norms-per-cosine path
// within 1e-12, on freshly built organizations and after arbitrary
// committed search operations (which exercise the accumulator-side norm
// maintenance).
func TestSimilarityKernelMatchesNaive(t *testing.T) {
	for _, seed := range []int64{1, 7} {
		o := kernelTestOrg(t, seed)
		assertKernelMatchesNaive(t, o, -1)
		rng := rand.New(rand.NewSource(seed * 31))
		for step := 0; step < 6; step++ {
			if _, _, ok := applyRandomOp(o, rng); !ok {
				break
			}
			if err := o.Validate(); err != nil {
				t.Fatalf("seed %d step %d: %v", seed, step, err)
			}
			assertKernelMatchesNaive(t, o, step)
		}
	}
}

// Cached norms must survive undo exactly: an operation followed by Undo
// restores both topics and their norms (Validate checks the invariant).
func TestKernelNormInvariantAfterUndo(t *testing.T) {
	o := kernelTestOrg(t, 3)
	rng := rand.New(rand.NewSource(5))
	for step := 0; step < 10; step++ {
		_, u, ok := applyRandomOp(o, rng)
		if !ok {
			break
		}
		o.Undo(u)
		if err := o.Validate(); err != nil {
			t.Fatalf("step %d after undo: %v", step, err)
		}
	}
}

// Worker-count invariance: the evaluator's results are bit-identical —
// not merely close — for any pool size, because every worker owns its
// index ranges and reductions run serially in query order.
func TestEvaluatorWorkerCountInvariance(t *testing.T) {
	o1 := kernelTestOrg(t, 11)
	o8 := kernelTestOrg(t, 11)
	ev1, err := NewEvaluatorWorkers(o1, 0, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	ev8, err := NewEvaluatorWorkers(o8, 0, nil, 8)
	if err != nil {
		t.Fatal(err)
	}
	if ev1.Effectiveness() != ev8.Effectiveness() {
		t.Fatalf("construction: workers=1 eff %v != workers=8 eff %v",
			ev1.Effectiveness(), ev8.Effectiveness())
	}
	rng1 := rand.New(rand.NewSource(13))
	rng8 := rand.New(rand.NewSource(13))
	for step := 0; step < 12; step++ {
		cs1, u1, ok := applyRandomOp(o1, rng1)
		if !ok {
			break
		}
		cs8, u8, _ := applyRandomOp(o8, rng8)
		e1 := ev1.Reevaluate(cs1)
		e8 := ev8.Reevaluate(cs8)
		if e1 != e8 {
			t.Fatalf("step %d: workers=1 eff %v != workers=8 eff %v", step, e1, e8)
		}
		for i := range o1.Attrs() {
			if ev1.AttrProb(i) != ev8.AttrProb(i) {
				t.Fatalf("step %d attr %d: workers=1 %v != workers=8 %v",
					step, i, ev1.AttrProb(i), ev8.AttrProb(i))
			}
		}
		mr1, mr8 := ev1.MeanReach(), ev8.MeanReach()
		for id := range mr1 {
			if mr1[id] != mr8[id] {
				t.Fatalf("step %d state %d: mean reach %v != %v", step, id, mr1[id], mr8[id])
			}
		}
		if step%3 == 2 {
			o1.Undo(u1)
			ev1.Rollback()
			o8.Undo(u8)
			ev8.Rollback()
		} else {
			ev1.Commit()
			ev8.Commit()
		}
	}
}

// Race coverage for the parallel evaluator: force a multi-goroutine
// pool and drive full Reevaluate/Commit and Reevaluate/Rollback cycles
// plus MeanReach reductions. Run with -race this pins the ownership
// discipline (per-query rows, fixed rollback-log segments, serial
// compaction); without -race it still checks the caches stay exact.
func TestEvaluatorParallelReevaluateRace(t *testing.T) {
	// The full small TagCloud keeps query count × pruned work above the
	// serial-work floor, so Reevaluate genuinely forks workers here.
	tc, err := synth.GenerateTagCloud(synth.SmallTagCloudConfig())
	if err != nil {
		t.Fatal(err)
	}
	o, err := NewClustered(tc.Lake, BuildConfig{})
	if err != nil {
		t.Fatal(err)
	}
	ev, err := NewEvaluatorWorkers(o, 0, nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(19))
	for step := 0; step < 20; step++ {
		effBefore := ev.Effectiveness()
		cs, u, ok := applyRandomOp(o, rng)
		if !ok {
			break
		}
		ev.Reevaluate(cs)
		ev.MeanReach()
		if step%2 == 1 {
			o.Undo(u)
			if err := ev.Rollback(); err != nil {
				t.Fatal(err)
			}
			if ev.Effectiveness() != effBefore {
				t.Fatalf("step %d: rollback eff %v != %v", step, ev.Effectiveness(), effBefore)
			}
			continue
		}
		if err := ev.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	// After the cycle storm the caches must still match a fresh exact
	// evaluation of the final organization.
	fresh, err := NewEvaluatorWorkers(o, 0, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	if d := math.Abs(ev.Effectiveness() - fresh.Effectiveness()); d > 1e-9 {
		t.Fatalf("post-storm eff %v != fresh %v", ev.Effectiveness(), fresh.Effectiveness())
	}
}
