// Package core implements the paper's primary contribution: data lake
// organizations and the algorithms that construct them (Nargesian, Pu,
// Zhu, Ghadiri Bashardoost, Miller: "Organizing Data Lakes for
// Navigation", SIGMOD 2020).
//
// An Org is a rooted DAG over three kinds of states (Sec 2.1, 3.2):
//
//   - leaf states, one per text attribute, whose domain is the attribute;
//   - tag states, one per metadata tag, whose children are the leaves of
//     the attributes carrying the tag (data(t), Definition 5);
//   - interior states (including the root) whose domains are the unions
//     of their children's domains (the inclusion property).
//
// The navigation model (Sec 2.2–2.3) is a Markov chain over this DAG:
// the probability of stepping from state s to child c under query topic
// X is a softmax with logit (γ/|ch(s)|)·cos(μ_c, μ_X) (Eq 1), reach
// probabilities compose over parents (Eq 4), and an attribute's
// discovery probability is the reach probability of its leaf.
//
// Domains are maintained with per-(state, attribute) child-support
// counts, so ADD_PARENT and DELETE_PARENT update domains and topic
// accumulators incrementally and reversibly, which the optimizer's
// Metropolis accept/reject step (Eq 9) relies on.
package core

import (
	"fmt"
	"math"
	"sort"

	"lakenav/internal/lake"
	"lakenav/vector"
)

// StateID identifies a state within its Org. IDs are dense indices into
// Org.States; deleted states leave tombstones.
type StateID int

// Kind distinguishes the three state roles.
type Kind int

const (
	// KindLeaf is a single-attribute state (the organization's leaves).
	KindLeaf Kind = iota
	// KindTag is a single-tag state: the fixed penultimate level.
	KindTag
	// KindInterior is a multi-tag state created by clustering or search,
	// including the root.
	KindInterior
)

// String returns the kind name.
func (k Kind) String() string {
	switch k {
	case KindLeaf:
		return "leaf"
	case KindTag:
		return "tag"
	case KindInterior:
		return "interior"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// State is one node of an organization.
type State struct {
	ID   StateID
	Kind Kind
	// Attr is the attribute of a leaf state (valid when Kind == KindLeaf).
	Attr lake.AttrID
	// Tags is M_s: the single tag of a tag state, or the tag set of an
	// interior state. Empty for leaves.
	Tags []string

	// Children and Parents are adjacency lists; order is insertion order
	// and is deterministic given the same operation sequence.
	Children []StateID
	Parents  []StateID

	// support counts, per attribute in the domain, how many direct
	// children's domains contain it; membership is support > 0. Nil for
	// leaves (their domain is implicitly {Attr}).
	support map[lake.AttrID]int
	// run accumulates the embedded-value population of the domain; its
	// mean is the state's topic vector μ_s (Definitions 4–5). Nil for
	// leaves (they use the attribute's precomputed topic).
	run *vector.Running
	// arn, when non-nil, is the owning Org's flat topic arena; setTopic
	// stores the vector there and keeps topic as a view into it.
	arn *topicArena
	// topic caches run's mean (or the attribute topic for leaves). When
	// arn is non-nil it is a view into the arena's contiguous block.
	topic vector.Vector
	// topicNorm caches ‖topic‖₂ so every cosine against the state costs
	// one Dot (vector.CosineNorms) instead of two Norms and a Dot. It is
	// maintained by setTopic wherever topic changes; Validate checks the
	// invariant topicNorm == Norm(topic).
	topicNorm float64

	deleted bool
}

// Deleted reports whether the state has been eliminated.
func (s *State) Deleted() bool { return s.deleted }

// Topic returns the state's topic vector μ_s.
func (s *State) Topic() vector.Vector { return s.topic }

// TopicNorm returns the cached L2 norm of the state's topic vector.
func (s *State) TopicNorm() float64 { return s.topicNorm }

// setTopic installs a new topic vector and its cached norm. All topic
// writes go through here so the norm can never go stale. Arena-backed
// states store the values in the Org's contiguous block and keep topic
// as a view into it; dimension-mismatched or nil vectors (possible
// only transiently, e.g. an empty Running mean) fall back to aliasing.
func (s *State) setTopic(t vector.Vector) {
	if s.arn != nil {
		if len(t) == s.arn.dim {
			s.topic, s.topicNorm = s.arn.install(int(s.ID), t)
			return
		}
		// Non-resident topic: zero the slot so the arena fast path
		// scores this state cos 0, matching the nil/zero-norm fallback.
		s.arn.clear(int(s.ID))
	}
	s.topic = t
	s.topicNorm = vector.Norm(t)
}

// HasAttr reports whether attribute a is in the state's domain D_s.
func (s *State) HasAttr(a lake.AttrID) bool {
	if s.Kind == KindLeaf {
		return s.Attr == a
	}
	return s.support[a] > 0
}

// DomainSize returns |D_s|.
func (s *State) DomainSize() int {
	if s.Kind == KindLeaf {
		return 1
	}
	return len(s.support)
}

// Domain returns the attribute IDs of D_s in ascending order.
func (s *State) Domain() []lake.AttrID {
	if s.Kind == KindLeaf {
		return []lake.AttrID{s.Attr}
	}
	out := make([]lake.AttrID, 0, len(s.support))
	for a := range s.support {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Org is an organization: a rooted DAG over a subset of a lake's
// attributes, determined by the subset of tags it is built over.
type Org struct {
	// Lake is the underlying data lake. The organization borrows its
	// attribute topic vectors and tag associations.
	Lake *lake.Lake
	// Gamma is the navigation model's γ hyper-parameter (Eq 1).
	Gamma float64

	Root   StateID
	States []*State

	// leafOf maps each organized attribute to its leaf state.
	leafOf map[lake.AttrID]StateID
	// tagState maps each organized tag to its tag state.
	tagState map[string]StateID

	// attrs is the organized attribute set in ascending order.
	attrs []lake.AttrID

	// attrIdx maps organized attributes to their index in attrs. It is
	// precomputed at construction (buildAttrIndex) and immutable after,
	// so concurrent evaluation never races an initialization.
	attrIdx map[lake.AttrID]int

	// track, when non-nil, records structural changes for the
	// incremental evaluator.
	track *ChangeSet

	// arena, when non-nil, is the flat topic arena holding every state's
	// topic vector in one contiguous block (see arena.go). Created at
	// the construction funnels (buildBase, Import); grown only by
	// newState.
	arena *topicArena

	// topo caches a topological order over live non-leaf states; nil
	// when invalidated by a structural change.
	topo []StateID
	// levels caches each state's shortest-path depth from the root; nil
	// when invalidated.
	levels []int
	// adj caches the flattened CSR adjacency snapshot the kernels sweep
	// (see adjacency.go); nil when invalidated.
	adj *adjSnapshot
}

// DefaultGamma is the navigation-model γ used when a config does not
// override it. The paper leaves γ unspecified; 20 makes a branching-2
// choice with a 0.2 cosine gap about 7:1, which reproduces the published
// gap between flat and hierarchical organizations.
const DefaultGamma = 20.0

// State returns the state with the given id.
func (o *Org) State(id StateID) *State { return o.States[id] }

// Attrs returns the organized attributes in ascending order. The slice
// must not be modified.
func (o *Org) Attrs() []lake.AttrID { return o.attrs }

// Leaf returns the leaf state of attribute a, or -1 if a is not
// organized.
func (o *Org) Leaf(a lake.AttrID) StateID {
	if id, ok := o.leafOf[a]; ok {
		return id
	}
	return -1
}

// TagState returns the tag state of tag, or -1 if the tag is not
// organized.
func (o *Org) TagState(tag string) StateID {
	if id, ok := o.tagState[tag]; ok {
		return id
	}
	return -1
}

// TagStates returns the IDs of all live tag states.
func (o *Org) TagStates() []StateID {
	out := make([]StateID, 0, len(o.tagState))
	for _, id := range o.tagState {
		if !o.States[id].deleted {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// LiveStates returns the number of live (non-deleted) states.
func (o *Org) LiveStates() int {
	n := 0
	for _, s := range o.States {
		if !s.deleted {
			n++
		}
	}
	return n
}

// newState appends a fresh state and returns it. With an arena, the
// state's slot is materialized up front; if growth moved the backing
// array, every existing topic view is rebound before the new state can
// be observed.
func (o *Org) newState(kind Kind) *State {
	s := &State{ID: StateID(len(o.States)), Kind: kind, Attr: -1, arn: o.arena}
	o.States = append(o.States, s)
	if o.arena != nil && o.arena.grow(len(o.States)) {
		o.rebindTopics()
	}
	return s
}

// addEdge links parent → child without domain maintenance; callers that
// need the inclusion property updated use linkChild.
func (o *Org) addEdge(parent, child StateID) {
	p, c := o.States[parent], o.States[child]
	p.Children = append(p.Children, child)
	c.Parents = append(c.Parents, parent)
	o.noteChildrenChanged(parent)
	o.invalidate()
}

// removeEdge unlinks parent → child (no domain maintenance).
func (o *Org) removeEdge(parent, child StateID) {
	p, c := o.States[parent], o.States[child]
	p.Children = removeID(p.Children, child)
	c.Parents = removeID(c.Parents, parent)
	o.noteChildrenChanged(parent)
	o.invalidate()
}

func removeID(ids []StateID, id StateID) []StateID {
	for i, x := range ids {
		if x == id {
			return append(ids[:i], ids[i+1:]...)
		}
	}
	return ids
}

func (o *Org) invalidate() {
	o.topo = nil
	o.levels = nil
	o.adj = nil
}

// hasEdge reports whether parent → child exists.
func (o *Org) hasEdge(parent, child StateID) bool {
	for _, c := range o.States[parent].Children {
		if c == child {
			return true
		}
	}
	return false
}

// domainAttrs returns the attribute set contributed by a child state
// (its whole domain).
func (o *Org) domainAttrs(child StateID) []lake.AttrID {
	return o.States[child].Domain()
}

// attrAccumulator returns the (sum, count) embedding accumulator of a
// single attribute.
func (o *Org) attrAccumulator(a lake.AttrID) (vector.Vector, int) {
	attr := o.Lake.Attr(a)
	return attr.EmbSum, attr.EmbCount
}

// addSupport raises the child-support of each attribute in attrs within
// state id, updating the topic accumulator on 0→1 transitions, and
// returns the attributes that newly entered the domain (which callers
// must propagate to the state's parents).
func (o *Org) addSupport(id StateID, attrs []lake.AttrID) []lake.AttrID {
	s := o.States[id]
	var entered []lake.AttrID
	for _, a := range attrs {
		s.support[a]++
		if s.support[a] == 1 {
			sum, count := o.attrAccumulator(a)
			s.run.AddWeighted(sum, count)
			entered = append(entered, a)
		}
	}
	if len(entered) > 0 {
		t, _ := s.run.Mean()
		s.setTopic(t)
		o.noteTopicChanged(id)
	}
	return entered
}

// removeSupport lowers the child-support of each attribute in attrs
// within state id and returns the attributes that left the domain.
func (o *Org) removeSupport(id StateID, attrs []lake.AttrID) []lake.AttrID {
	s := o.States[id]
	var left []lake.AttrID
	for _, a := range attrs {
		s.support[a]--
		if s.support[a] == 0 {
			delete(s.support, a)
			sum, count := o.attrAccumulator(a)
			s.run.RemoveWeighted(sum, count)
			left = append(left, a)
		} else if s.support[a] < 0 {
			panic(fmt.Sprintf("core: negative support for attr %d in state %d", a, id))
		}
	}
	if len(left) > 0 {
		t, _ := s.run.Mean()
		s.setTopic(t)
		o.noteTopicChanged(id)
	}
	return left
}

// propagateAdd raises support for attrs in state id and recursively in
// its ancestors wherever membership newly appears. It returns every
// (state, attrs-entered) pair for undo logging, in application order.
func (o *Org) propagateAdd(id StateID, attrs []lake.AttrID) []supportDelta {
	var log []supportDelta
	entered := o.addSupport(id, attrs)
	log = append(log, supportDelta{state: id, attrs: attrs})
	if len(entered) == 0 {
		return log
	}
	for _, p := range o.States[id].Parents {
		log = append(log, o.propagateAdd(p, entered)...)
	}
	return log
}

// propagateRemove lowers support for attrs in state id and recursively
// in its ancestors wherever membership disappears, returning the undo
// log in application order.
func (o *Org) propagateRemove(id StateID, attrs []lake.AttrID) []supportDelta {
	var log []supportDelta
	left := o.removeSupport(id, attrs)
	log = append(log, supportDelta{state: id, attrs: attrs})
	if len(left) == 0 {
		return log
	}
	for _, p := range o.States[id].Parents {
		log = append(log, o.propagateRemove(p, left)...)
	}
	return log
}

// supportDelta records one support change for undo.
type supportDelta struct {
	state StateID
	attrs []lake.AttrID
}

// linkChild adds edge parent → child and maintains the inclusion
// property along parent's ancestors. It returns the support log for
// undo.
func (o *Org) linkChild(parent, child StateID) []supportDelta {
	o.addEdge(parent, child)
	return o.propagateAdd(parent, o.domainAttrs(child))
}

// unlinkChild removes edge parent → child and maintains domains.
func (o *Org) unlinkChild(parent, child StateID) []supportDelta {
	o.removeEdge(parent, child)
	return o.propagateRemove(parent, o.domainAttrs(child))
}

// Levels returns each live reachable state's shortest-path depth from
// the root (root = 0); unreachable or deleted states get -1. Cached
// until the structure changes.
func (o *Org) Levels() []int {
	if o.levels != nil {
		return o.levels
	}
	levels := make([]int, len(o.States))
	for i := range levels {
		levels[i] = -1
	}
	levels[o.Root] = 0
	queue := []StateID{o.Root}
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		for _, c := range o.States[id].Children {
			if levels[c] == -1 {
				levels[c] = levels[id] + 1
				queue = append(queue, c)
			}
		}
	}
	o.levels = levels
	return levels
}

// isDescendant reports whether candidate is reachable from ancestor
// (strictly below it, or equal).
func (o *Org) isDescendant(ancestor, candidate StateID) bool {
	if ancestor == candidate {
		return true
	}
	stack := []StateID{ancestor}
	seen := map[StateID]bool{ancestor: true}
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, c := range o.States[id].Children {
			if c == candidate {
				return true
			}
			if !seen[c] {
				seen[c] = true
				stack = append(stack, c)
			}
		}
	}
	return false
}

// Validate checks the organization's structural invariants: a single
// root, acyclicity, edge symmetry, the inclusion property, and topic
// accumulator consistency. Intended for tests and debugging; it is
// O(V·|D|).
func (o *Org) Validate() error {
	root := o.States[o.Root]
	if root.deleted {
		return fmt.Errorf("core: root %d deleted", o.Root)
	}
	if len(root.Parents) != 0 {
		return fmt.Errorf("core: root has parents %v", root.Parents)
	}
	for _, s := range o.States {
		if s.deleted {
			continue
		}
		for _, c := range s.Children {
			child := o.States[c]
			if child.deleted {
				return fmt.Errorf("core: state %d has deleted child %d", s.ID, c)
			}
			if !containsID(child.Parents, s.ID) {
				return fmt.Errorf("core: edge %d→%d missing back-edge", s.ID, c)
			}
			// Inclusion property: D_c ⊆ D_s.
			for _, a := range child.Domain() {
				if !s.HasAttr(a) {
					return fmt.Errorf("core: inclusion violated: attr %d in child %d not in parent %d", a, c, s.ID)
				}
			}
		}
		for _, p := range s.Parents {
			if o.States[p].deleted {
				return fmt.Errorf("core: state %d has deleted parent %d", s.ID, p)
			}
			if !containsID(o.States[p].Children, s.ID) {
				return fmt.Errorf("core: edge %d→%d missing forward edge", p, s.ID)
			}
		}
		// The cached topic norm must match the topic it was derived from
		// (the similarity-kernel invariant).
		if got, want := s.topicNorm, vector.Norm(s.topic); math.Abs(got-want) > 1e-12 {
			return fmt.Errorf("core: state %d cached topic norm %v, recomputed %v", s.ID, got, want)
		}
		// Arena residency: a set topic must be a view into the state's
		// arena slot, and the slot norm must mirror the cached norm.
		if s.arn != nil && s.topic != nil {
			if s.arn != o.arena {
				return fmt.Errorf("core: state %d bound to a foreign arena", s.ID)
			}
			slot := int(s.ID)
			if slot >= o.arena.slots() {
				return fmt.Errorf("core: state %d has no arena slot (%d slots)", s.ID, o.arena.slots())
			}
			if len(s.topic) != o.arena.dim {
				return fmt.Errorf("core: state %d topic dim %d, arena dim %d", s.ID, len(s.topic), o.arena.dim)
			}
			if &s.topic[0] != &o.arena.vecs[slot*o.arena.dim] {
				return fmt.Errorf("core: state %d topic view does not alias its arena slot", s.ID)
			}
			if o.arena.norms[slot] != s.topicNorm {
				return fmt.Errorf("core: state %d arena norm %v, cached %v", s.ID, o.arena.norms[slot], s.topicNorm)
			}
		}
		// Support counts must equal the number of children containing
		// each attribute.
		if s.Kind != KindLeaf {
			want := make(map[lake.AttrID]int)
			for _, c := range s.Children {
				for _, a := range o.States[c].Domain() {
					want[a]++
				}
			}
			if len(want) != len(s.support) {
				return fmt.Errorf("core: state %d support has %d attrs, children supply %d", s.ID, len(s.support), len(want))
			}
			for a, n := range want {
				if s.support[a] != n {
					return fmt.Errorf("core: state %d support[%d] = %d, want %d", s.ID, a, s.support[a], n)
				}
			}
		}
	}
	o.Topo() // panics on cycle
	return nil
}

func containsID(ids []StateID, id StateID) bool {
	for _, x := range ids {
		if x == id {
			return true
		}
	}
	return false
}
