package core

import (
	"sort"
	"strings"
)

// Labeling follows the user-study prototype (Sec 4.4): leaves are
// labeled with table.attribute names, penultimate (tag) states with
// their tag, and other states with their two most frequent descendant
// tags — drawn from different children where possible, falling back to
// the third most frequent and so on when the top two come from the same
// child.

// Label returns a display label for state id.
func (o *Org) Label(id StateID) string {
	s := o.States[id]
	switch s.Kind {
	case KindLeaf:
		return o.Lake.Attr(s.Attr).QualifiedName(o.Lake)
	case KindTag:
		return s.Tags[0]
	default:
		tags := o.labelTags(id, 2)
		if len(tags) == 0 {
			return "(empty)"
		}
		return strings.Join(tags, " / ")
	}
}

// labelTags picks up to n tags for an interior state: tags are ranked
// by how many of the state's attributes carry them (weighting frequent
// topics first), and after the first pick, tags whose attribute sets
// come entirely from the same child as an already-picked tag are
// deferred in favor of tags from other children.
func (o *Org) labelTags(id StateID, n int) []string {
	s := o.States[id]
	// Count tag frequency within the state's domain.
	freq := make(map[string]int)
	for a := range s.support {
		for _, tag := range o.Lake.AttrTags(a) {
			if _, organized := o.tagState[tag]; organized {
				freq[tag]++
			}
		}
	}
	type tf struct {
		tag string
		n   int
	}
	ranked := make([]tf, 0, len(freq))
	for tag, c := range freq {
		ranked = append(ranked, tf{tag, c})
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].n != ranked[j].n {
			return ranked[i].n > ranked[j].n
		}
		return ranked[i].tag < ranked[j].tag
	})

	// childOf maps each candidate tag to the first child whose domain
	// covers the tag's attributes, approximating "the child the label
	// comes from".
	childOf := func(tag string) StateID {
		ts, ok := o.tagState[tag]
		if !ok {
			return -1
		}
		dom := o.States[ts].Domain()
		if len(dom) == 0 {
			return -1
		}
		for _, c := range s.Children {
			if o.States[c].HasAttr(dom[0]) {
				return c
			}
		}
		return -1
	}

	var out []string
	usedChildren := make(map[StateID]bool)
	// First pass: prefer tags from distinct children.
	for _, cand := range ranked {
		if len(out) >= n {
			break
		}
		c := childOf(cand.tag)
		if len(out) > 0 && c != -1 && usedChildren[c] {
			continue
		}
		out = append(out, cand.tag)
		if c != -1 {
			usedChildren[c] = true
		}
	}
	// Second pass: fill remaining slots regardless of child.
	for _, cand := range ranked {
		if len(out) >= n {
			break
		}
		dup := false
		for _, have := range out {
			if have == cand.tag {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, cand.tag)
		}
	}
	return out
}
