package core

import (
	"sort"

	"lakenav/internal/ann"
	"lakenav/internal/lake"
)

// The evaluation measure of Sec 4.2: a navigation is successful if it
// finds the queried attribute *or a similar one*. Success(A|O) =
// 1 − ∏_{A_i : κ(A_i, A) ≥ θ} (1 − P(A_i|O)) with κ the cosine
// similarity of topic vectors and θ = 0.9 in the paper; table success
// composes attribute successes like Eq 5.

// DefaultTheta is the paper's similarity threshold.
const DefaultTheta = 0.9

// SuccessResult holds per-table success probabilities.
type SuccessResult struct {
	// PerTable is indexed by TableID.
	PerTable []float64
	// Sorted is PerTable ascending — the series plotted in Figure 2.
	Sorted []float64
	// Mean is the average table success probability (the headline
	// numbers of Sec 4.3).
	Mean float64
}

// AttrProbMap returns each organized attribute's exact discovery
// probability as a map, the input shape EvaluateSuccess consumes.
// Multi-dimensional organizations provide the same shape via
// MultiDim.AttrProbs.
func AttrProbMap(o *Org) map[lake.AttrID]float64 {
	probs := o.AttrDiscoveryProbs()
	out := make(map[lake.AttrID]float64, len(probs))
	for i, a := range o.Attrs() {
		out[a] = probs[i]
	}
	return out
}

// EvaluateSuccess computes the success probability of every table in
// the lake under the given per-attribute discovery probabilities.
// Attributes similar to a query attribute are found with an LSH index
// over topic vectors (candidates verified exactly, so there are no
// false positives; near-duplicate attributes at θ = 0.9 hash together
// with high probability).
func EvaluateSuccess(l *lake.Lake, attrProbs map[lake.AttrID]float64, theta float64) *SuccessResult {
	if theta <= 0 || theta > 1 {
		theta = DefaultTheta
	}
	// Index every embeddable text attribute: similarity is defined over
	// 𝒜, not just organized attributes.
	var ids []lake.AttrID
	idx := ann.New(ann.DefaultConfig(l.Dim()))
	for _, a := range l.Attrs {
		if !a.Text || a.EmbCount == 0 {
			continue
		}
		idx.Add(a.Topic)
		ids = append(ids, a.ID)
	}

	// Success per attribute.
	attrSuccess := make(map[lake.AttrID]float64, len(ids))
	for i, id := range ids {
		_ = i
		fail := 1.0
		for _, m := range idx.Similar(l.Attr(id).Topic, theta) {
			fail *= 1 - attrProbs[ids[m.ID]]
		}
		attrSuccess[id] = 1 - fail
	}

	// Success per table (Sec 4.2's table success probability).
	res := &SuccessResult{PerTable: make([]float64, len(l.Tables))}
	var sum float64
	live := 0
	for ti, t := range l.Tables {
		if t.Removed {
			continue
		}
		live++
		fail := 1.0
		for _, a := range t.Attrs {
			if s, ok := attrSuccess[a]; ok {
				fail *= 1 - s
			}
		}
		res.PerTable[ti] = 1 - fail
		sum += res.PerTable[ti]
	}
	res.Sorted = append([]float64(nil), res.PerTable...)
	sort.Float64s(res.Sorted)
	if live > 0 {
		res.Mean = sum / float64(live)
	}
	return res
}
