package core

import (
	"encoding/json"
	"fmt"
	"io"

	"lakenav/internal/lake"
	"lakenav/vector"
)

// Import reconstructs a functioning organization from an Export
// snapshot and the lake it was built over. Topic vectors and domains
// are recomputed from the lake (they are derived state), so the
// snapshot stays small and the lake remains the single source of truth
// for content. The lake must have computed topics and must still
// contain every attribute and tag the snapshot references — Import is
// for cold-starting a navigation service on the same lake, not for
// migrating structures across lakes.
func Import(l *lake.Lake, ex *ExportedOrg) (*Org, error) {
	if l.Dim() == 0 {
		return nil, fmt.Errorf("core: import needs computed lake topics")
	}
	if ex.Gamma <= 0 {
		return nil, fmt.Errorf("core: import gamma %v not positive", ex.Gamma)
	}
	o := &Org{
		Lake:     l,
		Gamma:    ex.Gamma,
		Root:     -1,
		leafOf:   make(map[lake.AttrID]StateID),
		tagState: make(map[string]StateID),
		arena:    newTopicArena(l.Dim()),
	}

	// Qualified attribute names → IDs for leaf resolution. Removed
	// attributes are invisible: a snapshot referencing one is stale
	// relative to this lake and must fail, and a re-added table must
	// resolve to its live attribute slots, not its tombstones.
	attrByName := make(map[string]lake.AttrID, len(l.Attrs))
	for _, a := range l.Attrs {
		if a.Removed {
			continue
		}
		attrByName[a.QualifiedName(l)] = a.ID
	}

	// First pass: materialize states with fresh dense IDs.
	idMap := make(map[int]StateID, len(ex.States))
	for _, es := range ex.States {
		switch es.Kind {
		case "leaf":
			a, ok := attrByName[es.Attr]
			if !ok {
				return nil, fmt.Errorf("core: import references unknown attribute %q", es.Attr)
			}
			s := o.newState(KindLeaf)
			s.Attr = a
			s.setTopic(l.Attr(a).Topic)
			o.leafOf[a] = s.ID
			idMap[es.ID] = s.ID
		case "tag":
			if len(es.Tags) != 1 {
				return nil, fmt.Errorf("core: import tag state %d has %d tags", es.ID, len(es.Tags))
			}
			s := o.newState(KindTag)
			s.Tags = es.Tags
			s.support = make(map[lake.AttrID]int)
			s.run = vector.NewRunning(l.Dim())
			o.tagState[es.Tags[0]] = s.ID
			idMap[es.ID] = s.ID
		case "interior":
			s := o.newInterior()
			idMap[es.ID] = s.ID
		default:
			return nil, fmt.Errorf("core: import unknown state kind %q", es.Kind)
		}
	}

	// Second pass: link children bottom-up so domain propagation sees
	// complete child domains. Order: leaves have no children; tag
	// states link leaves; interiors link in reverse topological order.
	// Simplest correct order: link tag states first, then interiors in
	// an order where every child is already fully linked — obtained by
	// processing states by their maximum distance to a leaf.
	depth := make(map[int]int, len(ex.States))
	byID := make(map[int]ExportedState, len(ex.States))
	for _, es := range ex.States {
		byID[es.ID] = es
	}
	var depthOf func(id int, seen map[int]bool) (int, error)
	depthOf = func(id int, seen map[int]bool) (int, error) {
		if d, ok := depth[id]; ok {
			return d, nil
		}
		if seen[id] {
			return 0, fmt.Errorf("core: import cycle through state %d", id)
		}
		seen[id] = true
		defer delete(seen, id)
		es, ok := byID[id]
		if !ok {
			return 0, fmt.Errorf("core: import references unknown state %d", id)
		}
		max := 0
		for _, c := range es.Children {
			d, err := depthOf(c, seen)
			if err != nil {
				return 0, err
			}
			if d+1 > max {
				max = d + 1
			}
		}
		depth[id] = max
		return max, nil
	}
	order := make([]ExportedState, 0, len(ex.States))
	for _, es := range ex.States {
		if _, err := depthOf(es.ID, map[int]bool{}); err != nil {
			return nil, err
		}
		order = append(order, es)
	}
	// Sort by depth ascending (children before parents).
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && depth[order[j].ID] < depth[order[j-1].ID]; j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	for _, es := range order {
		parent := idMap[es.ID]
		for _, c := range es.Children {
			child, ok := idMap[c]
			if !ok {
				return nil, fmt.Errorf("core: import state %d references unknown child %d", es.ID, c)
			}
			o.linkChild(parent, child)
		}
	}

	// Resolve the root and the organized attribute set.
	root, ok := idMap[ex.Root]
	if !ok {
		return nil, fmt.Errorf("core: import root %d not among states", ex.Root)
	}
	o.Root = root
	o.attrs = o.States[root].Domain()
	o.buildAttrIndex()

	if err := o.Validate(); err != nil {
		return nil, fmt.Errorf("core: import produced invalid organization: %w", err)
	}
	return o, nil
}

// ReadOrg deserializes an organization written by WriteJSON and
// reattaches it to the lake.
func ReadOrg(l *lake.Lake, r io.Reader) (*Org, error) {
	var ex ExportedOrg
	if err := json.NewDecoder(r).Decode(&ex); err != nil {
		return nil, fmt.Errorf("core: import decode: %w", err)
	}
	return Import(l, &ex)
}
