package core

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"

	"lakenav/internal/atomicio"
	"lakenav/internal/binfmt"
	"lakenav/internal/lake"
)

// checkpointVersion guards the on-disk format; bump on incompatible
// changes.
const checkpointVersion = 1

// CheckpointConfig enables periodic crash-safe snapshots of the local
// search. Checkpoints are written at traversal boundaries — never in
// the middle of a traversal, whose schedule is derived state — once
// EveryAccepted newly accepted operations have accumulated, and each
// write is atomic (temp file + fsync + rename), so a crash at any
// moment leaves either the previous checkpoint or the new one.
//
// Writing a checkpoint also reconstructs the live search from the
// checkpoint's own bytes (organization re-imported, evaluator rebuilt,
// RNG state restored). That makes the trajectory after a checkpoint a
// pure function of the file's content: a process killed and resumed
// from the checkpoint follows exactly the search an uninterrupted
// process would have, and reaches an identical final organization.
type CheckpointConfig struct {
	// Path is the checkpoint file. Empty disables the file write but
	// keeps the boundary reconstruction (used by tests).
	Path string
	// EveryAccepted is how many newly accepted operations accumulate
	// before the next traversal boundary checkpoints. Zero means 100.
	EveryAccepted int
	// Dim and TagGroup stamp the checkpoint with its dimension identity
	// in multi-dimensional builds, so a resume can refuse a file that
	// belongs to a different dimension or grouping.
	Dim      int
	TagGroup []string
	// Binary writes checkpoints in the binfmt container format instead
	// of JSON, cutting per-snapshot serialization cost. LoadCheckpoint
	// accepts either format; a resumed search keeps checkpointing in
	// the format it was loaded from.
	Binary bool
}

func (c *CheckpointConfig) defaults() {
	if c.EveryAccepted <= 0 {
		c.EveryAccepted = 100
	}
}

// SearchConfig is the serialized subset of OptimizeConfig that shapes
// the search trajectory; a resumed search runs under the checkpointed
// config, not the caller's.
type SearchConfig struct {
	RepFraction       float64 `json:"repFraction,omitempty"`
	MaxIterations     int     `json:"maxIterations"`
	Window            int     `json:"window"`
	MinRelImprovement float64 `json:"minRelImprovement"`
	LeafProposals     int     `json:"leafProposals"`
	AcceptExponent    float64 `json:"acceptExponent"`
	Seed              int64   `json:"seed"`
	CheckpointEvery   int     `json:"checkpointEvery"`
}

// Checkpoint is a resumable snapshot of an in-progress local search:
// the current organization, the best one seen so far, every counter
// the termination and plateau rules depend on, and the RNG state.
type Checkpoint struct {
	Version int `json:"version"`
	// Dim and TagGroup identify the dimension of a multi-dimensional
	// build, so a restart never resumes dimension 2 from dimension 0's
	// file or from a checkpoint of a differently grouped lake.
	Dim      int      `json:"dim"`
	TagGroup []string `json:"tagGroup,omitempty"`

	Config SearchConfig `json:"config"`

	Iterations   int     `json:"iterations"`
	Accepted     int     `json:"accepted"`
	Rejected     int     `json:"rejected"`
	SinceImprove int     `json:"sinceImprove"`
	PlateauRef   float64 `json:"plateauRef"`
	InitialEff   float64 `json:"initialEff"`
	BestEff      float64 `json:"bestEff"`
	RNGState     uint64  `json:"rngState"`

	// Current is the organization the search continues from.
	Current *ExportedOrg `json:"current"`
	// Best is the best organization seen, when it differs from Current
	// (accepted-but-not-improving operations move the walk off the
	// best state); nil means Current is the best.
	Best *ExportedOrg `json:"best,omitempty"`

	// path remembers where the checkpoint was loaded from so a resumed
	// search keeps checkpointing to the same file.
	path string
	// binary remembers the on-disk format the checkpoint was loaded
	// from (or configured with), so a resumed search keeps writing it.
	binary bool
}

// searchConfig rebuilds the OptimizeConfig a resumed search runs under.
func (ck *Checkpoint) searchConfig() OptimizeConfig {
	c := ck.Config
	return OptimizeConfig{
		RepFraction:       c.RepFraction,
		MaxIterations:     c.MaxIterations,
		Window:            c.Window,
		MinRelImprovement: c.MinRelImprovement,
		LeafProposals:     c.LeafProposals,
		AcceptExponent:    c.AcceptExponent,
		Seed:              c.Seed,
		Checkpoint: &CheckpointConfig{
			Path:          ck.path,
			EveryAccepted: c.CheckpointEvery,
			Binary:        ck.binary,
		},
	}
}

// MatchesDimension reports whether the checkpoint belongs to dimension
// dim built over exactly the given tag group — the compatibility gate a
// multi-dimensional resume applies before trusting a file on disk.
func (ck *Checkpoint) MatchesDimension(dim int, tags []string) bool {
	if ck.Dim != dim || len(ck.TagGroup) != len(tags) {
		return false
	}
	for i, t := range ck.TagGroup {
		if tags[i] != t {
			return false
		}
	}
	return true
}

// validate applies the structural checks a file from disk must pass
// before a resume may trust it.
func (ck *Checkpoint) validate() error {
	if ck.Version != checkpointVersion {
		return fmt.Errorf("core: checkpoint version %d, want %d", ck.Version, checkpointVersion)
	}
	if ck.Current == nil {
		return fmt.Errorf("core: checkpoint has no current organization")
	}
	if ck.Iterations < 0 || ck.Accepted < 0 || ck.Rejected < 0 || ck.SinceImprove < 0 {
		return fmt.Errorf("core: checkpoint has negative counters")
	}
	if ck.Accepted+ck.Rejected != ck.Iterations {
		return fmt.Errorf("core: checkpoint counters inconsistent: %d accepted + %d rejected != %d iterations",
			ck.Accepted, ck.Rejected, ck.Iterations)
	}
	return nil
}

// SaveCheckpoint atomically writes ck to path, in the binfmt container
// format when the checkpoint is binary-flagged and JSON otherwise.
func SaveCheckpoint(path string, ck *Checkpoint) error {
	if ck.binary {
		w, err := encodeBinCheckpoint(ck)
		if err != nil {
			return fmt.Errorf("core: save checkpoint: %w", err)
		}
		if err := binfmt.WriteFile(path, w); err != nil {
			return fmt.Errorf("core: save checkpoint: %w", err)
		}
		return nil
	}
	err := atomicio.WriteFile(path, func(w io.Writer) error {
		enc := json.NewEncoder(w)
		return enc.Encode(ck)
	})
	if err != nil {
		return fmt.Errorf("core: save checkpoint: %w", err)
	}
	return nil
}

// LoadCheckpoint reads and validates a checkpoint written by
// SaveCheckpoint, sniffing the container magic so both the binary and
// the JSON format are accepted. A torn, truncated, or otherwise
// invalid file returns an error; callers are expected to fall back to
// a fresh build.
func LoadCheckpoint(path string) (*Checkpoint, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("core: load checkpoint: %w", err)
	}
	var ck *Checkpoint
	if binfmt.IsMagic(data) {
		ck, err = DecodeBinCheckpoint(data)
	} else {
		ck, err = DecodeCheckpoint(bytes.NewReader(data))
	}
	if err != nil {
		return nil, fmt.Errorf("core: load checkpoint %s: %w", path, err)
	}
	ck.path = path
	return ck, nil
}

// DecodeCheckpoint decodes and validates a checkpoint from a stream.
// It accepts exactly what LoadCheckpoint accepts from a file, and never
// returns a checkpoint that fails validate() — resumable state is
// either structurally sound or rejected whole.
func DecodeCheckpoint(r io.Reader) (*Checkpoint, error) {
	var ck Checkpoint
	if err := json.NewDecoder(r).Decode(&ck); err != nil {
		return nil, fmt.Errorf("core: decode checkpoint: %w", err)
	}
	if err := ck.validate(); err != nil {
		return nil, err
	}
	return &ck, nil
}

// rebuildSearchState reconstructs the live search state a checkpoint
// describes: the current organization re-imported over the lake, an
// evaluator whose representatives replay the original seed's selection
// draws, and the RNG restored to the checkpointed position. Both the
// in-process boundary reconstruction and a cross-process resume go
// through this one function, which is what guarantees they cannot
// diverge.
func rebuildSearchState(l *lake.Lake, cfg OptimizeConfig, ck *Checkpoint) (*Org, *Evaluator, *searchSource, error) {
	org, err := Import(l, ck.Current)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("core: checkpoint current org: %w", err)
	}
	src := newSearchSource(cfg.Seed)
	rng := newSearchRand(src)
	// Representative selection consumes the same draws the original
	// evaluator construction did (attribute set and leaf topics are
	// invariant under search operations), reproducing the original
	// query set; the search RNG position is then restored explicitly.
	// Workers is free to differ between the original and resumed process
	// — pool size never changes evaluation results.
	ev, err := NewEvaluatorWorkers(org, cfg.RepFraction, rng, cfg.Workers)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("core: checkpoint evaluator: %w", err)
	}
	src.SetState(ck.RNGState)
	return org, ev, src, nil
}
