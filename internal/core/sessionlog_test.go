package core

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"lakenav/vector"
)

func TestSessionLogRoundTrip(t *testing.T) {
	o := clusteredOrg(t)
	var buf bytes.Buffer
	logger := NewSessionLogger(&buf)
	topic := vector.Vector{1, 0, 0, 0}
	rng := rand.New(rand.NewSource(3))
	sessions := 5
	var total int
	for i := 0; i < sessions; i++ {
		path := o.Walk(topic, rng)
		if err := logger.Log("fish", path); err != nil {
			t.Fatal(err)
		}
		total += len(path) - 1
	}

	f, _ := NewFeedback(o, 1)
	replayed, skipped, err := ReplayLog(&buf, f)
	if err != nil {
		t.Fatal(err)
	}
	if replayed != sessions || skipped != 0 {
		t.Errorf("replayed %d skipped %d", replayed, skipped)
	}
	if got := f.Observations(); got != float64(total) {
		t.Errorf("Observations = %v, want %d", got, total)
	}
}

func TestSessionLogRejectsShortPath(t *testing.T) {
	o := clusteredOrg(t)
	logger := NewSessionLogger(&bytes.Buffer{})
	if err := logger.Log("x", []StateID{o.Root}); err == nil {
		t.Error("single-state path accepted")
	}
}

func TestReplayLogSkipsGarbageAndStaleEntries(t *testing.T) {
	o := clusteredOrg(t)
	var buf bytes.Buffer
	logger := NewSessionLogger(&buf)
	topic := vector.Vector{0, 1, 0, 0}
	path := o.Walk(topic, nil)
	logger.Log("grain", path)
	buf.WriteString("{malformed\n")
	buf.WriteString(`{"time":"2026-01-01T00:00:00Z","path":[99999,100000]}` + "\n")
	// An entry whose edge no longer exists (reverse path).
	rev := []StateID{path[1], path[0]}
	logger.Log("backwards", rev)

	f, _ := NewFeedback(o, 1)
	replayed, skipped, err := ReplayLog(&buf, f)
	if err != nil {
		t.Fatal(err)
	}
	if replayed != 1 {
		t.Errorf("replayed = %d, want 1", replayed)
	}
	if skipped != 3 {
		t.Errorf("skipped = %d, want 3", skipped)
	}
}

func TestReplayLogEmpty(t *testing.T) {
	o := clusteredOrg(t)
	f, _ := NewFeedback(o, 1)
	replayed, skipped, err := ReplayLog(strings.NewReader("\n\n"), f)
	if err != nil || replayed != 0 || skipped != 0 {
		t.Errorf("empty log: %d/%d/%v", replayed, skipped, err)
	}
}

func TestReplayAfterReoptimizationSkipsInvalidated(t *testing.T) {
	o := clusteredOrg(t)
	var buf bytes.Buffer
	logger := NewSessionLogger(&buf)
	topic := vector.Vector{0, 0, 1, 0}
	logger.Log("city", o.Walk(topic, nil))

	// Structural change that eliminates interior states: old sessions
	// through them must be skipped, not crash.
	r := pickInterior(t, o)
	s := o.State(r).Children[0]
	o.DeleteParentOp(s, r)

	f, _ := NewFeedback(o, 1)
	replayed, skipped, err := ReplayLog(&buf, f)
	if err != nil {
		t.Fatal(err)
	}
	if replayed+skipped != 1 {
		t.Errorf("replayed %d skipped %d", replayed, skipped)
	}
}
