package core

import (
	"math"
	"math/rand"

	"lakenav/internal/lake"
	"lakenav/vector"
)

// childTransitions returns P(c|s, X, O) for every child of s, parallel
// to s.Children (Eq 1): a softmax over children with logit
// (γ/|ch(s)|)·cos(μ_c, μ_X). The |ch(s)| penalty makes large branching
// factors wash out topic signal, which is what drives the model away
// from flat organizations.
func (o *Org) childTransitions(s StateID, topic vector.Vector) []float64 {
	return o.childTransitionsN(s, topic, vector.Norm(topic))
}

// childTransitionsN is childTransitions with the query topic's norm
// precomputed. It allocates its result; hot paths use transitionsInto
// with caller-owned scratch instead.
func (o *Org) childTransitionsN(s StateID, topic vector.Vector, topicNorm float64) []float64 {
	a := o.adjacency()
	n := len(a.childrenOf(s))
	if n == 0 {
		return nil
	}
	return o.transitionsInto(a, s, topic, topicNorm, make([]float64, n))
}

// transitionsInto is the zero-allocation transition kernel: it computes
// P(c|s, X, O) for every child of s into the caller-provided scratch
// (cap(probs) must be at least the fan-out; size it with
// adjSnapshot.maxChildren) and returns probs resliced to the fan-out,
// or nil for a childless state. The sweep walks the CSR children run
// and the flat topic arena directly — contiguous float64 and int32
// blocks, no *State dereferences — which is what lets evaluator
// workers scale with cores instead of stalling on cache misses. The
// arithmetic (CosineNorms per child, max-logit softmax) is identical,
// in the same order, to the pointer-path fallback, so results are
// bit-for-bit the same.
//
//lakelint:hotpath
func (o *Org) transitionsInto(a *adjSnapshot, s StateID, topic vector.Vector, topicNorm float64, probs []float64) []float64 {
	children := a.childrenOf(s)
	if len(children) == 0 {
		return nil
	}
	probs = probs[:len(children)]
	scale := o.Gamma / float64(len(children))
	maxLogit := math.Inf(-1)
	if ar := o.arena; ar != nil {
		dim := ar.dim
		for i, c := range children {
			off := int(c) * dim
			probs[i] = scale * vector.CosineNorms(ar.vecs[off:off+dim], topic, ar.norms[c], topicNorm)
			if probs[i] > maxLogit {
				maxLogit = probs[i]
			}
		}
	} else {
		for i, c := range children {
			probs[i] = scale * o.cosToState(StateID(c), topic, topicNorm)
			if probs[i] > maxLogit {
				maxLogit = probs[i]
			}
		}
	}
	var sum float64
	for i := range probs {
		probs[i] = math.Exp(probs[i] - maxLogit)
		sum += probs[i]
	}
	for i := range probs {
		probs[i] /= sum
	}
	return probs
}

// TransitionProbs is the exported form of childTransitions for callers
// outside the optimizer (navigation UIs, the user-study simulator).
func (o *Org) TransitionProbs(s StateID, topic vector.Vector) []float64 {
	return o.childTransitions(s, topic)
}

// ReachProbs computes P(s|X, O) (Eq 2–4) for every live non-leaf state
// reachable from the root, indexed by StateID (leaves and unreachable
// states hold 0). One topological sweep: each state's reach mass is
// pushed to its children through the transition softmax.
//
// Leaf reach is intentionally not computed here: only the query
// attribute's own leaf is ever needed, and tag states can have very
// many leaf children (the paper notes the algorithm has no control over
// the lowest-level branching factor); use LeafProb for it.
func (o *Org) ReachProbs(topic vector.Vector) []float64 {
	return o.reachProbsN(topic, vector.Norm(topic))
}

// reachProbsN is ReachProbs with the query topic's norm precomputed.
// It allocates its result and scratch; hot paths use reachProbsInto.
func (o *Org) reachProbsN(topic vector.Vector, topicNorm float64) []float64 {
	a := o.adjacency()
	return o.reachProbsInto(topic, topicNorm,
		make([]float64, len(o.States)), make([]float64, a.maxChildren))
}

// reachProbsInto is the zero-allocation reach sweep: it fills reach
// (len(o.States), zeroed here) with P(s|X, O) using probs as the
// transition scratch (cap ≥ adjacency().maxChildren) and returns
// reach. Only interior states propagate — leaves are terminal and tag
// states' children are leaves — exactly the skips the allocating path
// performed, so results are bit-identical.
//
//lakelint:hotpath
func (o *Org) reachProbsInto(topic vector.Vector, topicNorm float64, reach, probs []float64) []float64 {
	a := o.adjacency()
	reach = reach[:len(o.States)]
	for i := range reach {
		reach[i] = 0
	}
	reach[o.Root] = 1
	interior := uint8(KindInterior)
	leaf := uint8(KindLeaf)
	for _, id := range o.Topo() {
		if a.kinds[id] != interior || reach[id] == 0 {
			continue
		}
		p := o.transitionsInto(a, id, topic, topicNorm, probs)
		for i, c := range a.childrenOf(id) {
			if a.kinds[c] != leaf {
				reach[c] += reach[id] * p[i]
			}
		}
	}
	return reach
}

// LeafProb returns the discovery probability of attribute a under query
// topic, given reach probabilities from ReachProbs over the same topic:
// the reach mass of a's tag-state parents times the leaf-level
// transition probabilities (Definition 1).
func (o *Org) LeafProb(a lake.AttrID, topic vector.Vector, reach []float64) float64 {
	return o.leafProbN(a, topic, vector.Norm(topic), reach)
}

// leafProbN is LeafProb with the query topic's norm precomputed. It
// allocates transition scratch; hot paths use leafProbInto.
func (o *Org) leafProbN(a lake.AttrID, topic vector.Vector, topicNorm float64, reach []float64) float64 {
	adj := o.adjacency()
	return o.leafProbInto(a, topic, topicNorm, reach, make([]float64, adj.maxChildren))
}

// leafProbInto is the zero-allocation form of leafProbN: probs is the
// caller-owned transition scratch (cap ≥ adjacency().maxChildren).
//
//lakelint:hotpath
func (o *Org) leafProbInto(a lake.AttrID, topic vector.Vector, topicNorm float64, reach, probs []float64) float64 {
	leaf, ok := o.leafOf[a]
	if !ok {
		return 0
	}
	adj := o.adjacency()
	var p float64
	for _, t := range adj.parentsOf(leaf) {
		if reach[t] == 0 {
			continue
		}
		tp := o.transitionsInto(adj, StateID(t), topic, topicNorm, probs)
		for i, c := range adj.childrenOf(StateID(t)) {
			if StateID(c) == leaf {
				p += reach[t] * tp[i]
				break
			}
		}
	}
	return p
}

// DiscoveryProb returns P(A|O): the probability that a user whose query
// topic is attribute a's own topic vector reaches a's leaf. This is the
// exact quantity the organization problem maximizes the table-level
// aggregate of (Definitions 1–3).
func (o *Org) DiscoveryProb(a lake.AttrID) float64 {
	leaf, ok := o.leafOf[a]
	if !ok {
		return 0
	}
	topic, norm := o.States[leaf].topic, o.States[leaf].topicNorm
	return o.leafProbN(a, topic, norm, o.reachProbsN(topic, norm))
}

// DiscoveryProbs returns, for every organized attribute (parallel to
// Attrs()), the probability that a session navigating under the given
// query topic reaches the attribute's leaf: one reach sweep shared by
// every leaf evaluation, with the topic norm computed once. This is the
// serving-path form of discovery evaluation — DiscoveryProb answers it
// for an attribute's own topic, this answers it for an arbitrary query.
func (o *Org) DiscoveryProbs(topic vector.Vector) []float64 {
	norm := vector.Norm(topic)
	reach := o.reachProbsN(topic, norm)
	out := make([]float64, len(o.attrs))
	for i, a := range o.attrs {
		out[i] = o.leafProbN(a, topic, norm, reach)
	}
	return out
}

// AttrDiscoveryProbs returns P(A|O) for every organized attribute,
// parallel to Attrs(). This is the exact (non-approximate, non-pruned)
// evaluation; the optimizer uses the incremental evaluator instead.
func (o *Org) AttrDiscoveryProbs() []float64 {
	out := make([]float64, len(o.attrs))
	for i, a := range o.attrs {
		out[i] = o.DiscoveryProb(a)
	}
	return out
}

// TableProb returns P(T|O) (Eq 5) given per-attribute discovery
// probabilities indexed like Attrs(); attrs outside the organization
// contribute nothing.
func (o *Org) TableProb(t *lake.Table, attrProbs []float64) float64 {
	idx := o.attrIndex()
	fail := 1.0
	for _, a := range t.Attrs {
		if i, ok := idx[a]; ok {
			fail *= 1 - attrProbs[i]
		}
	}
	return 1 - fail
}

// attrIndex maps organized attribute IDs to their position in Attrs().
// The map is precomputed by buildAttrIndex at every construction funnel
// (buildBase, Import) — never built lazily here — so concurrent readers
// (TableProb, Effectiveness under a serving snapshot) share an
// immutable map instead of racing a first-call initialization.
func (o *Org) attrIndex() map[lake.AttrID]int {
	if o.attrIdx == nil {
		// A nil index means a construction path skipped buildAttrIndex —
		// a programming error on par with negative support counts.
		panic("core: attrIndex read before buildAttrIndex")
	}
	return o.attrIdx
}

// buildAttrIndex precomputes attrIdx from attrs. Every Org constructor
// must call it after the organized attribute set is final: the index is
// immutable afterwards (operations rearrange interior states but never
// change the attribute set), which is what makes concurrent evaluation
// safe without a lock.
func (o *Org) buildAttrIndex() {
	o.attrIdx = make(map[lake.AttrID]int, len(o.attrs))
	for i, a := range o.attrs {
		o.attrIdx[a] = i
	}
}

// Effectiveness returns P(T|O) averaged over the lake's tables (Eq 6),
// computed exactly. Tables with no organized attribute contribute 0,
// matching the paper's observation that single-attribute, single-tag
// tables stay hard to discover.
func (o *Org) Effectiveness() float64 {
	probs := o.AttrDiscoveryProbs()
	var sum float64
	for _, t := range o.Lake.Tables {
		sum += o.TableProb(t, probs)
	}
	if len(o.Lake.Tables) == 0 {
		return 0
	}
	return sum / float64(len(o.Lake.Tables))
}

// Walk simulates one navigation session: starting at the root, sample a
// child per the transition model until a leaf is reached. It returns
// the visited states, root first, leaf last. The rng makes sessions
// reproducible; a nil rng takes the most probable child at every step.
func (o *Org) Walk(topic vector.Vector, rng *rand.Rand) []StateID {
	topicNorm := vector.Norm(topic)
	path := []StateID{o.Root}
	cur := o.Root
	for {
		s := o.States[cur]
		if len(s.Children) == 0 {
			return path
		}
		probs := o.childTransitionsN(cur, topic, topicNorm)
		var next StateID
		if rng == nil {
			best, bp := 0, -1.0
			for i, p := range probs {
				if p > bp {
					bp, best = p, i
				}
			}
			next = s.Children[best]
		} else {
			u := rng.Float64()
			acc := 0.0
			next = s.Children[len(s.Children)-1]
			for i, p := range probs {
				acc += p
				if u <= acc {
					next = s.Children[i]
					break
				}
			}
		}
		path = append(path, next)
		cur = next
	}
}
