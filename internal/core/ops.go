package core

import "fmt"

// The two search operations of Sec 3.3 — ADD_PARENT and DELETE_PARENT —
// plus their leaf-level variants (Example 4 adds a second tag-state
// parent to a leaf). Every operation returns an UndoLog; applying the
// log restores the organization exactly, which the optimizer's
// Metropolis reject path depends on.
//
// Operations are composed from four reversible primitives. Because a
// linkChild immediately followed (in reverse order) by an unlinkChild of
// the same edge is an exact inverse — domains involved are stable within
// a single operation — undo is simply the inverse primitives in reverse
// order, with no support snapshotting.

type actionKind int

const (
	aLink      actionKind = iota // linkChild(p, c)
	aUnlink                      // unlinkChild(p, c)
	aRawRemove                   // removeEdge(p, c) without domain maintenance
	aDelete                      // mark state p deleted
)

type action struct {
	kind actionKind
	p, c StateID
}

// UndoLog records the primitive actions of one operation in application
// order.
type UndoLog struct {
	actions []action
}

func (u *UndoLog) record(o *Org, kind actionKind, p, c StateID) {
	switch kind {
	case aLink:
		o.linkChild(p, c)
	case aUnlink:
		o.unlinkChild(p, c)
	case aRawRemove:
		o.removeEdge(p, c)
	case aDelete:
		o.States[p].deleted = true
		o.noteEliminated(p)
		o.invalidate()
	}
	u.actions = append(u.actions, action{kind, p, c})
}

// Undo reverses the operation that produced u. It must be applied to the
// organization in exactly the state the operation left it in.
func (o *Org) Undo(u *UndoLog) {
	for i := len(u.actions) - 1; i >= 0; i-- {
		a := u.actions[i]
		switch a.kind {
		case aLink:
			o.unlinkChild(a.p, a.c)
		case aUnlink:
			o.linkChild(a.p, a.c)
		case aRawRemove:
			o.addEdge(a.p, a.c)
		case aDelete:
			o.States[a.p].deleted = false
			o.invalidate()
		}
	}
}

// AddParentOp applies Operation I: state n becomes a new parent of s.
// The inclusion property is maintained by adding D_s to n and to every
// ancestor of n where it is not yet covered. Callers must ensure n is
// not already a parent of s and that s is not an ancestor of n (which
// would create a cycle); CanAddParent checks both.
func (o *Org) AddParentOp(n, s StateID) *UndoLog {
	if !o.CanAddParent(n, s) {
		panic(fmt.Sprintf("core: invalid AddParent(%d, %d)", n, s))
	}
	u := &UndoLog{}
	u.record(o, aLink, n, s)
	return u
}

// CanAddParent reports whether AddParentOp(n, s) is structurally legal:
// distinct live states, n can bear children of s's kind (interior states
// parent tag/interior states; tag states parent leaves), the edge does
// not yet exist, and s is not an ancestor of n.
func (o *Org) CanAddParent(n, s StateID) bool {
	if n == s {
		return false
	}
	ns, ss := o.States[n], o.States[s]
	if ns.deleted || ss.deleted {
		return false
	}
	switch ss.Kind {
	case KindLeaf:
		// Leaves only hang under tag states (Sec 3.2 fixes the bottom
		// two levels; Example 4 adds tag-state parents to leaves).
		if ns.Kind != KindTag {
			return false
		}
	default:
		// Tag and interior states only hang under interior states.
		if ns.Kind != KindInterior {
			return false
		}
	}
	if o.hasEdge(n, s) {
		return false
	}
	// Cycle check: s must not be an ancestor of n.
	return !o.isDescendant(s, n)
}

// CanDeleteParent reports whether DeleteParentOp(s, r) is legal: r is a
// live interior non-root parent of s.
func (o *Org) CanDeleteParent(s, r StateID) bool {
	rs := o.States[r]
	if rs.deleted || rs.Kind != KindInterior || r == o.Root {
		return false
	}
	return o.hasEdge(r, s)
}

// DeleteParentOp applies Operation II: parent r of s is eliminated, and
// so is every interior (multi-tag) sibling of r, reconnecting the
// children of each eliminated state to its parents. Tag states ("siblings
// with one tag"), leaves, and the root are never eliminated. Callers
// validate with CanDeleteParent.
func (o *Org) DeleteParentOp(s, r StateID) *UndoLog {
	if !o.CanDeleteParent(s, r) {
		panic(fmt.Sprintf("core: invalid DeleteParent(%d, %d)", s, r))
	}
	// Collect the elimination set: r's interior, non-root siblings, then
	// r itself. Deterministic order: siblings in parent child-list order.
	var elim []StateID
	seen := map[StateID]bool{r: true}
	for _, p := range o.States[r].Parents {
		for _, sib := range o.States[p].Children {
			if seen[sib] {
				continue
			}
			seen[sib] = true
			st := o.States[sib]
			if st.Kind == KindInterior && sib != o.Root && !st.deleted {
				elim = append(elim, sib)
			}
		}
	}
	elim = append(elim, r)

	u := &UndoLog{}
	for _, e := range elim {
		if o.States[e].deleted {
			continue // eliminated earlier in this same operation
		}
		o.eliminate(u, e)
	}
	return u
}

// eliminate removes state e from the organization: its children are
// linked to its live parents, then e is disconnected and tombstoned.
func (o *Org) eliminate(u *UndoLog, e StateID) {
	parents := append([]StateID(nil), o.States[e].Parents...)
	children := append([]StateID(nil), o.States[e].Children...)
	// 1. Bridge: every (parent, child) pair gets an edge unless present.
	//    Linking first keeps every domain's membership stable, so no
	//    accumulator churn happens during elimination.
	for _, p := range parents {
		for _, c := range children {
			if !o.hasEdge(p, c) {
				u.record(o, aLink, p, c)
			}
		}
	}
	// 2. Detach e from its parents with domain maintenance (support for
	//    D_e drops; membership survives via the bridged children).
	for _, p := range parents {
		u.record(o, aUnlink, p, e)
	}
	// 3. Detach e's children without touching e's own frozen domain.
	for _, c := range children {
		u.record(o, aRawRemove, e, c)
	}
	// 4. Tombstone.
	u.record(o, aDelete, e, -1)
}

// AddLeafParentOp links tag state t as an additional parent of leaf.
// This is Example 4's move: the attribute becomes reachable through a
// second, semantically related tag. t's domain gains the attribute and
// the change propagates to t's ancestors.
func (o *Org) AddLeafParentOp(t, leaf StateID) *UndoLog {
	if o.States[leaf].Kind != KindLeaf || !o.CanAddParent(t, leaf) {
		panic(fmt.Sprintf("core: invalid AddLeafParent(%d, %d)", t, leaf))
	}
	u := &UndoLog{}
	u.record(o, aLink, t, leaf)
	return u
}

// CanRemoveLeafParent reports whether the t → leaf edge can be dropped:
// it exists and leaf keeps at least one other parent.
func (o *Org) CanRemoveLeafParent(t, leaf StateID) bool {
	if o.States[leaf].Kind != KindLeaf {
		return false
	}
	return o.hasEdge(t, leaf) && len(o.States[leaf].Parents) >= 2
}

// RemoveLeafParentOp drops the t → leaf edge (the leaf-level
// DELETE_PARENT: no state is eliminated because the penultimate level
// is fixed, the leaf just stops being reachable through t).
func (o *Org) RemoveLeafParentOp(t, leaf StateID) *UndoLog {
	if !o.CanRemoveLeafParent(t, leaf) {
		panic(fmt.Sprintf("core: invalid RemoveLeafParent(%d, %d)", t, leaf))
	}
	u := &UndoLog{}
	u.record(o, aUnlink, t, leaf)
	return u
}
