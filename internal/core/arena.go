package core

import "lakenav/vector"

// topicArena is the flat kernel arena: every state topic vector of one
// organization packed into a single contiguous []float64 block, with a
// parallel norm table, both indexed by the state's dense ID. The
// navigation hot path (transitionsInto and everything built on it)
// walks the block directly — one slice index per child instead of a
// *State dereference per cosine — which is what lets the evaluator's
// worker pool scale instead of stalling on pointer-chasing cache
// misses (ROADMAP: the parallel evaluator losing to serial).
//
// Ownership rules:
//
//   - The arena is owned by the Org and created at the construction
//     funnels (buildBase, Import). Each state's slot is int(State.ID).
//   - State.topic is a capacity-clamped view into the block, installed
//     exclusively by the setTopic funnel (install is its storage
//     backend); State.topicNorm mirrors norms[slot]. The lakelint
//     topicfunnel invariant is unchanged: setTopic remains the only
//     writer of the State fields.
//   - Growth happens only in Org.newState. When the block reallocates,
//     every live view is rebound through setTopic (rebindTopics), so a
//     view can never dangle into a stale backing array. Callers that
//     retain Topic() views (e.g. evaluator queries) must not outlive a
//     state addition — the same staleness rule the evaluator enforces
//     with its own state-count check.
//   - States whose topic was never set keep a nil view; their slot
//     stays zeroed and their norm 0, so the kernel scores them cos 0,
//     exactly as vector.CosineNorms does for a zero-norm vector.
type topicArena struct {
	dim   int
	vecs  []float64
	norms []float64
}

// newTopicArena returns an empty arena for dim-dimensional topics.
func newTopicArena(dim int) *topicArena {
	return &topicArena{dim: dim}
}

// slots returns the number of materialized slots.
func (a *topicArena) slots() int { return len(a.norms) }

// grow ensures the arena holds at least n slots, zero-filled, and
// reports whether the vector block's backing array moved (in which
// case every outstanding view must be rebound). Capacity doubles so
// rebinds stay O(log n) over an organization's lifetime.
func (a *topicArena) grow(n int) (moved bool) {
	if n <= a.slots() {
		return false
	}
	need := n * a.dim
	if need > cap(a.vecs) {
		newCap := 2 * cap(a.vecs)
		if newCap < need {
			newCap = need
		}
		nv := make([]float64, need, newCap)
		copy(nv, a.vecs)
		a.vecs = nv
		moved = true
	} else {
		a.vecs = a.vecs[:need]
	}
	for a.slots() < n {
		a.norms = append(a.norms, 0)
	}
	return moved
}

// view returns the slot's vector block, capacity-clamped so an append
// through the view can never clobber a neighboring slot.
func (a *topicArena) view(slot int) vector.Vector {
	off := slot * a.dim
	return a.vecs[off : off+a.dim : off+a.dim]
}

// install copies t into the slot, recomputes the slot norm, and returns
// the (view, norm) pair for setTopic to mirror into the State fields.
// The norm is computed over the copied values, so it is bit-identical
// to vector.Norm(t).
func (a *topicArena) install(slot int, t vector.Vector) (vector.Vector, float64) {
	v := a.view(slot)
	copy(v, t)
	n := vector.Norm(v)
	a.norms[slot] = n
	return v, n
}

// clear zeroes the slot's vector block and norm, so the kernel fast
// path scores the state cos 0 — the convention for unset topics.
func (a *topicArena) clear(slot int) {
	v := a.view(slot)
	for i := range v {
		v[i] = 0
	}
	a.norms[slot] = 0
}

// rebindTopics repoints every arena-backed topic view at the arena's
// current backing array, through the setTopic funnel so the view/norm
// pair is re-established in the one place allowed to write it. Called
// after a growth reallocation; values are unchanged (grow copied them),
// only the slice headers move.
func (o *Org) rebindTopics() {
	for _, s := range o.States {
		if s.arn != nil && s.topic != nil {
			s.setTopic(s.topic)
		}
	}
}
