package core

import (
	"testing"

	"lakenav/vector"
)

// snapshot captures the observable structure of an org for exact
// restore checks.
type orgSnapshot struct {
	edges   map[[2]StateID]bool
	deleted map[StateID]bool
	domains map[StateID]string
	topics  map[StateID]vector.Vector
}

func snapshotOrg(o *Org) orgSnapshot {
	snap := orgSnapshot{
		edges:   make(map[[2]StateID]bool),
		deleted: make(map[StateID]bool),
		domains: make(map[StateID]string),
		topics:  make(map[StateID]vector.Vector),
	}
	for _, s := range o.States {
		snap.deleted[s.ID] = s.deleted
		for _, c := range s.Children {
			snap.edges[[2]StateID{s.ID, c}] = true
		}
		dom := ""
		for _, a := range s.Domain() {
			dom += string(rune('A' + int(a)))
		}
		snap.domains[s.ID] = dom
		snap.topics[s.ID] = s.Topic().Clone()
	}
	return snap
}

func assertSnapshotEqual(t *testing.T, want, got orgSnapshot) {
	t.Helper()
	if len(want.edges) != len(got.edges) {
		t.Fatalf("edge count %d != %d", len(got.edges), len(want.edges))
	}
	for e := range want.edges {
		if !got.edges[e] {
			t.Fatalf("edge %v lost", e)
		}
	}
	for id, d := range want.deleted {
		if got.deleted[id] != d {
			t.Fatalf("state %d deleted=%v, want %v", id, got.deleted[id], d)
		}
	}
	for id, dom := range want.domains {
		if got.domains[id] != dom {
			t.Fatalf("state %d domain %q, want %q", id, got.domains[id], dom)
		}
	}
	for id, topic := range want.topics {
		if !vector.Equal(topic, got.topics[id], 1e-9) {
			t.Fatalf("state %d topic drifted", id)
		}
	}
}

func clusteredOrg(t *testing.T) *Org {
	t.Helper()
	l := testLake(t)
	o, err := NewClustered(l, BuildConfig{})
	if err != nil {
		t.Fatal(err)
	}
	return o
}

// pickInterior returns a non-root interior state.
func pickInterior(t *testing.T, o *Org) StateID {
	t.Helper()
	for _, s := range o.States {
		if s.Kind == KindInterior && s.ID != o.Root && !s.deleted {
			return s.ID
		}
	}
	t.Fatal("no non-root interior state")
	return -1
}

func TestAddParentOpMaintainsInclusion(t *testing.T) {
	o := clusteredOrg(t)
	// Find a tag state and an interior state that is not its parent.
	ts := o.TagState("fishery")
	var n StateID = -1
	for _, s := range o.States {
		if s.Kind == KindInterior && o.CanAddParent(s.ID, ts) {
			n = s.ID
			break
		}
	}
	if n == -1 {
		t.Skip("no legal AddParent in this structure")
	}
	before := o.State(n).DomainSize()
	u := o.AddParentOp(n, ts)
	if u == nil {
		t.Fatal("nil undo log")
	}
	if err := o.Validate(); err != nil {
		t.Fatalf("after AddParent: %v", err)
	}
	if !o.hasEdge(n, ts) {
		t.Error("edge not added")
	}
	if o.State(n).DomainSize() < before {
		t.Error("parent domain shrank")
	}
	// Root must now (still) cover the tag state's attrs.
	for _, a := range o.State(ts).Domain() {
		if !o.State(o.Root).HasAttr(a) {
			t.Errorf("root missing attr %d", a)
		}
	}
}

func TestAddParentUndoExact(t *testing.T) {
	o := clusteredOrg(t)
	ts := o.TagState("grain")
	var n StateID = -1
	for _, s := range o.States {
		if s.Kind == KindInterior && o.CanAddParent(s.ID, ts) {
			n = s.ID
			break
		}
	}
	if n == -1 {
		t.Skip("no legal AddParent")
	}
	want := snapshotOrg(o)
	u := o.AddParentOp(n, ts)
	o.Undo(u)
	assertSnapshotEqual(t, want, snapshotOrg(o))
	if err := o.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestCanAddParentRules(t *testing.T) {
	o := clusteredOrg(t)
	ts := o.TagState("fishery")
	leaf := o.Leaf(o.Attrs()[0])
	root := o.Root

	if o.CanAddParent(ts, ts) {
		t.Error("self-parent allowed")
	}
	// Tag state cannot parent a tag state.
	if o.CanAddParent(ts, o.TagState("grain")) {
		t.Error("tag-state parent of tag state allowed")
	}
	// Leaf cannot be a parent at all.
	if o.CanAddParent(leaf, ts) {
		t.Error("leaf parent allowed")
	}
	// Interior cannot parent a leaf.
	if o.CanAddParent(root, leaf) {
		t.Error("interior parent of leaf allowed")
	}
	// Existing parent rejected.
	p := o.State(ts).Parents[0]
	if o.CanAddParent(p, ts) {
		t.Error("duplicate edge allowed")
	}
	// Cycle rejected: root is an ancestor of everything, so making the
	// root a child of one of its descendants must be illegal.
	inner := pickInterior(t, o)
	if o.CanAddParent(inner, root) {
		t.Error("cycle-creating edge allowed")
	}
}

func TestDeleteParentOpFlattens(t *testing.T) {
	o := clusteredOrg(t)
	r := pickInterior(t, o)
	// s: any child of r.
	s := o.State(r).Children[0]
	if !o.CanDeleteParent(s, r) {
		t.Fatal("CanDeleteParent false for valid input")
	}
	grandparents := append([]StateID(nil), o.State(r).Parents...)
	u := o.DeleteParentOp(s, r)
	if u == nil {
		t.Fatal("nil undo log")
	}
	if !o.State(r).Deleted() {
		t.Error("r not eliminated")
	}
	if err := o.Validate(); err != nil {
		t.Fatalf("after DeleteParent: %v", err)
	}
	// s must now be a child of r's former parents.
	for _, gp := range grandparents {
		if o.State(gp).Deleted() {
			continue
		}
		if !o.hasEdge(gp, s) {
			t.Errorf("s not bridged to grandparent %d", gp)
		}
	}
	// s still reachable from root.
	if !o.isDescendant(o.Root, s) {
		t.Error("s unreachable after DeleteParent")
	}
}

func TestDeleteParentEliminatesInteriorSiblingsOnly(t *testing.T) {
	o := clusteredOrg(t)
	r := pickInterior(t, o)
	s := o.State(r).Children[0]
	// Record the sibling set before the op.
	sibInterior := map[StateID]bool{}
	sibTag := map[StateID]bool{}
	for _, p := range o.State(r).Parents {
		for _, sib := range o.State(p).Children {
			if sib == r {
				continue
			}
			if o.State(sib).Kind == KindInterior && sib != o.Root {
				sibInterior[sib] = true
			} else if o.State(sib).Kind == KindTag {
				sibTag[sib] = true
			}
		}
	}
	o.DeleteParentOp(s, r)
	for sib := range sibInterior {
		if !o.State(sib).Deleted() {
			t.Errorf("interior sibling %d survived", sib)
		}
	}
	for sib := range sibTag {
		if o.State(sib).Deleted() {
			t.Errorf("tag sibling %d eliminated", sib)
		}
	}
}

func TestDeleteParentUndoExact(t *testing.T) {
	o := clusteredOrg(t)
	r := pickInterior(t, o)
	s := o.State(r).Children[0]
	want := snapshotOrg(o)
	u := o.DeleteParentOp(s, r)
	o.Undo(u)
	assertSnapshotEqual(t, want, snapshotOrg(o))
	if err := o.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestCanDeleteParentRules(t *testing.T) {
	o := clusteredOrg(t)
	ts := o.TagState("fishery")
	leaf := o.State(ts).Children[0]
	// Root cannot be eliminated.
	rootChild := o.State(o.Root).Children[0]
	if o.CanDeleteParent(rootChild, o.Root) {
		t.Error("root elimination allowed")
	}
	// Tag states cannot be eliminated.
	if o.CanDeleteParent(leaf, ts) {
		t.Error("tag-state elimination allowed")
	}
	// Non-parent rejected.
	inner := pickInterior(t, o)
	if !o.hasEdge(inner, ts) && o.CanDeleteParent(ts, inner) {
		t.Error("non-parent elimination allowed")
	}
}

func TestAddLeafParentOp(t *testing.T) {
	o := clusteredOrg(t)
	// product (fish+grain) is under fishery and grain; city is not a
	// parent.
	var product StateID = -1
	for _, a := range o.Attrs() {
		if o.Lake.Attr(a).Name == "product" {
			product = o.Leaf(a)
		}
	}
	if product == -1 {
		t.Fatal("product leaf missing")
	}
	city := o.TagState("city")
	if !o.CanAddParent(city, product) {
		t.Fatal("CanAddParent(city, product) false")
	}
	before := o.State(city).DomainSize()
	want := snapshotOrg(o)
	u := o.AddLeafParentOp(city, product)
	if err := o.Validate(); err != nil {
		t.Fatal(err)
	}
	if o.State(city).DomainSize() != before+1 {
		t.Error("city domain did not grow")
	}
	// The city tag state's topic must have moved toward the product
	// attribute.
	o.Undo(u)
	assertSnapshotEqual(t, want, snapshotOrg(o))
}

func TestRemoveLeafParentOp(t *testing.T) {
	o := clusteredOrg(t)
	var product StateID = -1
	for _, a := range o.Attrs() {
		if o.Lake.Attr(a).Name == "product" {
			product = o.Leaf(a)
		}
	}
	parents := o.State(product).Parents
	if len(parents) != 2 {
		t.Fatalf("product has %d parents, want 2 (fishery, grain)", len(parents))
	}
	tag := parents[0]
	if !o.CanRemoveLeafParent(tag, product) {
		t.Fatal("CanRemoveLeafParent false")
	}
	want := snapshotOrg(o)
	u := o.RemoveLeafParentOp(tag, product)
	if err := o.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(o.State(product).Parents) != 1 {
		t.Error("parent not removed")
	}
	o.Undo(u)
	assertSnapshotEqual(t, want, snapshotOrg(o))

	// Removing the last parent is illegal.
	single := o.Leaf(o.Attrs()[0])
	if len(o.State(single).Parents) == 1 && o.CanRemoveLeafParent(o.State(single).Parents[0], single) {
		t.Error("removing sole parent allowed")
	}
}

func TestChangeSetRecordsOps(t *testing.T) {
	o := clusteredOrg(t)
	ts := o.TagState("grain")
	var n StateID = -1
	for _, s := range o.States {
		if s.Kind == KindInterior && o.CanAddParent(s.ID, ts) {
			n = s.ID
			break
		}
	}
	if n == -1 {
		t.Skip("no legal AddParent")
	}
	cs := o.BeginChanges()
	o.AddParentOp(n, ts)
	o.EndChanges()
	if !cs.ChildrenChanged[n] {
		t.Error("ChildrenChanged missing new parent")
	}
	// If n did not already cover grain's attributes through another
	// child, its topic must have been recorded as changed.
	covered := true
	for _, a := range o.State(ts).Domain() {
		// After the op n covers everything; support > 1 means another
		// child also supplies it.
		if o.State(n).support[a] == 1 {
			covered = false
		}
	}
	if !covered && len(cs.TopicChanged) == 0 {
		t.Error("no topic changes recorded despite new domain attrs")
	}
}

func TestChangeSetRecordsElimination(t *testing.T) {
	o := clusteredOrg(t)
	r := pickInterior(t, o)
	s := o.State(r).Children[0]
	cs := o.BeginChanges()
	o.DeleteParentOp(s, r)
	o.EndChanges()
	if len(cs.Eliminated) == 0 {
		t.Error("no eliminations recorded")
	}
	found := false
	for _, e := range cs.Eliminated {
		if e == r {
			found = true
		}
	}
	if !found {
		t.Error("r not in eliminated set")
	}
}

func TestOpSequenceStaysValid(t *testing.T) {
	// Stress: apply a long random-ish but deterministic sequence of ops
	// with occasional undos; Validate after each.
	o := clusteredOrg(t)
	applied := 0
	for round := 0; round < 30; round++ {
		progressed := false
		// Try an AddParent.
		for _, s := range o.States {
			if s.deleted || s.Kind == KindLeaf {
				continue
			}
			done := false
			for _, n := range o.States {
				if n.Kind != KindInterior || n.deleted || !o.CanAddParent(n.ID, s.ID) {
					continue
				}
				u := o.AddParentOp(n.ID, s.ID)
				if err := o.Validate(); err != nil {
					t.Fatalf("round %d AddParent(%d,%d): %v", round, n.ID, s.ID, err)
				}
				if round%3 == 0 {
					o.Undo(u)
					if err := o.Validate(); err != nil {
						t.Fatalf("round %d undo: %v", round, err)
					}
				}
				applied++
				done = true
				break
			}
			if done {
				progressed = true
				break
			}
		}
		// Try a DeleteParent.
		for _, s := range o.States {
			if s.deleted {
				continue
			}
			for _, r := range append([]StateID(nil), s.Parents...) {
				if !o.CanDeleteParent(s.ID, r) {
					continue
				}
				u := o.DeleteParentOp(s.ID, r)
				if err := o.Validate(); err != nil {
					t.Fatalf("round %d DeleteParent(%d,%d): %v", round, s.ID, r, err)
				}
				if round%2 == 0 {
					o.Undo(u)
					if err := o.Validate(); err != nil {
						t.Fatalf("round %d undo delete: %v", round, err)
					}
				}
				applied++
				progressed = true
				break
			}
			if progressed {
				break
			}
		}
		if !progressed {
			break
		}
	}
	if applied == 0 {
		t.Fatal("stress test applied no operations")
	}
}
