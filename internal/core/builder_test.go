package core

import (
	"math"
	"strings"
	"testing"

	"lakenav/internal/lake"
	"lakenav/vector"
)

// axisModel embeds words by prefix onto four fixed directions, giving
// tests exact control over topic geometry.
type axisModel struct{}

func (axisModel) Dim() int { return 4 }

func (axisModel) Lookup(word string) (vector.Vector, bool) {
	axes := map[string]vector.Vector{
		"fish":  {1, 0, 0, 0},
		"grain": {0, 1, 0, 0},
		"city":  {0, 0, 1, 0},
		"tax":   {0, 0, 0, 1},
	}
	for prefix, v := range axes {
		if strings.HasPrefix(word, prefix) {
			// Slight tilt per word keeps same-axis words distinct.
			out := v.Clone()
			out[(len(word)+1)%4] += 0.05
			return vector.Normalize(out), true
		}
	}
	return nil, false
}

// testLake builds a small lake with four clean topics and one
// cross-topic table.
func testLake(t testing.TB) *lake.Lake {
	t.Helper()
	l := lake.New()
	l.AddTable("fishlist", []string{"fishery"},
		lake.AttrSpec{Name: "species", Values: []string{"fisha", "fishb", "fishc"}})
	l.AddTable("grains", []string{"grain"},
		lake.AttrSpec{Name: "crop", Values: []string{"graina", "grainb"}})
	l.AddTable("urban", []string{"city"},
		lake.AttrSpec{Name: "district", Values: []string{"citya", "cityb"}})
	l.AddTable("budget", []string{"tax"},
		lake.AttrSpec{Name: "category", Values: []string{"taxa", "taxb"}},
		lake.AttrSpec{Name: "amount", Values: []string{"10", "20"}})
	l.AddTable("inspections", []string{"fishery", "grain"},
		lake.AttrSpec{Name: "product", Values: []string{"fishd", "grainc"}})
	l.ComputeTopics(axisModel{})
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
	return l
}

func TestNewFlatStructure(t *testing.T) {
	l := testLake(t)
	o, err := NewFlat(l, BuildConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if err := o.Validate(); err != nil {
		t.Fatal(err)
	}
	// 6 text attrs (amount is numeric): species, crop, district,
	// category, product; product counted once. So 5 leaves.
	if got := len(o.Attrs()); got != 5 {
		t.Errorf("organized attrs = %d, want 5", got)
	}
	root := o.State(o.Root)
	if root.Kind != KindInterior {
		t.Errorf("root kind = %v", root.Kind)
	}
	// Flat root has all 4 tag states as children.
	if len(root.Children) != 4 {
		t.Errorf("root children = %d, want 4", len(root.Children))
	}
	for _, c := range root.Children {
		if o.State(c).Kind != KindTag {
			t.Errorf("flat root child %d is %v", c, o.State(c).Kind)
		}
	}
	// Root domain covers every organized attribute.
	if root.DomainSize() != 5 {
		t.Errorf("root domain = %d, want 5", root.DomainSize())
	}
}

func TestNewFlatSkipsNumericAttrs(t *testing.T) {
	l := testLake(t)
	o, err := NewFlat(l, BuildConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range o.Attrs() {
		if !l.Attr(a).Text {
			t.Errorf("numeric attr %d organized", a)
		}
	}
}

func TestTagStateDomains(t *testing.T) {
	l := testLake(t)
	o, err := NewFlat(l, BuildConfig{})
	if err != nil {
		t.Fatal(err)
	}
	fishery := o.State(o.TagState("fishery"))
	// data(fishery) = species + product.
	if fishery.DomainSize() != 2 {
		t.Errorf("fishery domain = %v", fishery.Domain())
	}
	// Tag state topic is near the fish axis (product tilts it slightly).
	if c := vector.Cosine(fishery.Topic(), vector.Vector{1, 0, 0, 0}); c < 0.6 {
		t.Errorf("fishery topic cosine to fish axis = %v", c)
	}
}

func TestNewClusteredStructure(t *testing.T) {
	l := testLake(t)
	o, err := NewClustered(l, BuildConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if err := o.Validate(); err != nil {
		t.Fatal(err)
	}
	root := o.State(o.Root)
	if root.Kind != KindInterior {
		t.Fatalf("root kind = %v", root.Kind)
	}
	// Binary dendrogram over 4 tags: root has 2 children.
	if len(root.Children) != 2 {
		t.Errorf("clustered root children = %d, want 2", len(root.Children))
	}
	if root.DomainSize() != 5 {
		t.Errorf("root domain = %d, want 5", root.DomainSize())
	}
	// 5 leaves + 4 tag states + 3 interior = 12 states.
	if got := o.LiveStates(); got != 12 {
		t.Errorf("live states = %d, want 12", got)
	}
}

func TestBuildWithTagSubset(t *testing.T) {
	l := testLake(t)
	o, err := NewFlat(l, BuildConfig{Tags: []string{"fishery", "grain"}})
	if err != nil {
		t.Fatal(err)
	}
	// species, crop, product.
	if got := len(o.Attrs()); got != 3 {
		t.Errorf("subset attrs = %d, want 3", got)
	}
	if o.TagState("city") != -1 {
		t.Error("city organized despite subset")
	}
}

func TestBuildErrors(t *testing.T) {
	l := testLake(t)
	if _, err := NewFlat(l, BuildConfig{Gamma: -1}); err == nil {
		t.Error("negative gamma accepted")
	}
	if _, err := NewFlat(l, BuildConfig{Tags: []string{"nonexistent"}}); err == nil {
		t.Error("unknown tag subset accepted")
	}
	empty := lake.New()
	if _, err := NewFlat(empty, BuildConfig{}); err == nil {
		t.Error("lake without topics accepted")
	}
}

func TestBuildSingleTag(t *testing.T) {
	l := testLake(t)
	o, err := NewClustered(l, BuildConfig{Tags: []string{"city"}})
	if err != nil {
		t.Fatal(err)
	}
	if err := o.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := len(o.State(o.Root).Children); got != 1 {
		t.Errorf("single-tag root children = %d", got)
	}
}

func TestLevels(t *testing.T) {
	l := testLake(t)
	o, err := NewFlat(l, BuildConfig{})
	if err != nil {
		t.Fatal(err)
	}
	levels := o.Levels()
	if levels[o.Root] != 0 {
		t.Errorf("root level = %d", levels[o.Root])
	}
	for _, tag := range []string{"fishery", "grain", "city", "tax"} {
		if lv := levels[o.TagState(tag)]; lv != 1 {
			t.Errorf("tag %s level = %d, want 1", tag, lv)
		}
	}
	for _, a := range o.Attrs() {
		if lv := levels[o.Leaf(a)]; lv != 2 {
			t.Errorf("leaf of %d level = %d, want 2", a, lv)
		}
	}
}

func TestTopoOrder(t *testing.T) {
	l := testLake(t)
	o, err := NewClustered(l, BuildConfig{})
	if err != nil {
		t.Fatal(err)
	}
	order := o.Topo()
	pos := make(map[StateID]int, len(order))
	for i, id := range order {
		pos[id] = i
	}
	if pos[o.Root] != 0 {
		t.Errorf("root not first in topo order")
	}
	for _, id := range order {
		for _, c := range o.State(id).Children {
			if pos[c] <= pos[id] {
				t.Fatalf("topo violation: %d before parent %d", c, id)
			}
		}
	}
}

func TestTransitionProbsSumToOne(t *testing.T) {
	l := testLake(t)
	o, err := NewClustered(l, BuildConfig{})
	if err != nil {
		t.Fatal(err)
	}
	topic := vector.Vector{1, 0, 0, 0}
	for _, s := range o.States {
		if len(s.Children) == 0 {
			continue
		}
		probs := o.TransitionProbs(s.ID, topic)
		var sum float64
		for _, p := range probs {
			if p < 0 || p > 1 {
				t.Fatalf("transition prob %v out of range", p)
			}
			sum += p
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("state %d transitions sum to %v", s.ID, sum)
		}
	}
}

func TestTransitionPrefersSimilarChild(t *testing.T) {
	l := testLake(t)
	o, err := NewFlat(l, BuildConfig{})
	if err != nil {
		t.Fatal(err)
	}
	fishTopic := vector.Vector{1, 0, 0, 0}
	probs := o.TransitionProbs(o.Root, fishTopic)
	children := o.State(o.Root).Children
	var fishProb, maxOther float64
	for i, c := range children {
		if o.State(c).Tags[0] == "fishery" {
			fishProb = probs[i]
		} else if probs[i] > maxOther {
			maxOther = probs[i]
		}
	}
	if fishProb <= maxOther {
		t.Errorf("fishery prob %v not above others (max %v)", fishProb, maxOther)
	}
}

func TestReachProbs(t *testing.T) {
	l := testLake(t)
	o, err := NewClustered(l, BuildConfig{})
	if err != nil {
		t.Fatal(err)
	}
	topic := vector.Vector{1, 0, 0, 0}
	reach := o.ReachProbs(topic)
	if reach[o.Root] != 1 {
		t.Errorf("root reach = %v", reach[o.Root])
	}
	// In a tree, reach probabilities at any level sum to <= 1 and tag
	// states' total equals 1 (all mass flows to some tag state).
	var tagSum float64
	for _, ts := range o.TagStates() {
		r := reach[ts]
		if r < 0 || r > 1 {
			t.Fatalf("tag state reach %v out of range", r)
		}
		tagSum += r
	}
	if math.Abs(tagSum-1) > 1e-9 {
		t.Errorf("tag-state reach sum = %v, want 1 in a tree", tagSum)
	}
}

func TestDiscoveryProbFavorsOwnAttr(t *testing.T) {
	l := testLake(t)
	o, err := NewClustered(l, BuildConfig{})
	if err != nil {
		t.Fatal(err)
	}
	// Attr 0 is species (fish axis). Searching with its own topic should
	// find it with higher probability than searching with the tax topic.
	species := o.Attrs()[0]
	own := o.DiscoveryProb(species)
	if own <= 0 || own > 1 {
		t.Fatalf("DiscoveryProb = %v", own)
	}
	taxTopic := vector.Vector{0, 0, 0, 1}
	cross := o.LeafProb(species, taxTopic, o.ReachProbs(taxTopic))
	if cross >= own {
		t.Errorf("cross-topic prob %v >= own-topic prob %v", cross, own)
	}
}

func TestEffectivenessBounds(t *testing.T) {
	l := testLake(t)
	o, err := NewClustered(l, BuildConfig{})
	if err != nil {
		t.Fatal(err)
	}
	eff := o.Effectiveness()
	if eff <= 0 || eff > 1 {
		t.Errorf("effectiveness = %v", eff)
	}
}

func TestTableProb(t *testing.T) {
	l := testLake(t)
	o, err := NewFlat(l, BuildConfig{})
	if err != nil {
		t.Fatal(err)
	}
	probs := o.AttrDiscoveryProbs()
	for _, tb := range l.Tables {
		p := o.TableProb(tb, probs)
		if p < 0 || p > 1 {
			t.Fatalf("table %s prob = %v", tb.Name, p)
		}
	}
	// A table's probability is at least each single attribute's.
	budget := l.Tables[3]
	catIdx := -1
	for i, a := range o.Attrs() {
		if l.Attr(a).Name == "category" {
			catIdx = i
		}
	}
	if catIdx == -1 {
		t.Fatal("category not organized")
	}
	if p := o.TableProb(budget, probs); p < probs[catIdx]-1e-12 {
		t.Errorf("table prob %v below attr prob %v", p, probs[catIdx])
	}
}

func TestWalkReachesLeaf(t *testing.T) {
	l := testLake(t)
	o, err := NewClustered(l, BuildConfig{})
	if err != nil {
		t.Fatal(err)
	}
	fishTopic := vector.Vector{1, 0, 0, 0}
	path := o.Walk(fishTopic, nil)
	if len(path) < 3 {
		t.Fatalf("path too short: %v", path)
	}
	if path[0] != o.Root {
		t.Error("path does not start at root")
	}
	last := o.State(path[len(path)-1])
	if last.Kind != KindLeaf {
		t.Errorf("path ends at %v", last.Kind)
	}
	// Greedy walk under the fish topic should land on a fish attribute.
	name := l.Attr(last.Attr).Name
	if name != "species" && name != "product" {
		t.Errorf("greedy fish walk found %q", name)
	}
}
