package core

import "fmt"

// adjSnapshot is a flattened CSR-style view of the organization's
// adjacency: each state's children (and parents) stored as one
// contiguous int32 run inside a shared slice, indexed by an offset
// table. The navigation kernels sweep these runs instead of chasing
// []*State pointer lists, so a transition sweep touches two small
// arrays (offsets + ids) plus the topic arena — all contiguous.
//
// The snapshot is a cache owned by Org, rebuilt lazily by adjacency()
// and dropped by invalidate() alongside topo/levels. Like Topo it must
// be warmed serially before concurrent readers fork (the evaluator and
// serve layers already warm Topo, which warms this).
//
//lakelint:immutable
type adjSnapshot struct {
	childStart  []int32 // len(States)+1 offsets into children
	children    []int32
	parentStart []int32 // len(States)+1 offsets into parents
	parents     []int32
	kinds       []uint8 // Kind per state, for branch-free sweep filters
	maxChildren int     // widest fan-out, sizes transition scratch
}

// childrenOf returns state id's children run. The slice aliases the
// snapshot and must not be modified.
func (a *adjSnapshot) childrenOf(id StateID) []int32 {
	return a.children[a.childStart[id]:a.childStart[id+1]]
}

// parentsOf returns state id's parents run.
func (a *adjSnapshot) parentsOf(id StateID) []int32 {
	return a.parents[a.parentStart[id]:a.parentStart[id+1]]
}

// adjacency returns the cached CSR snapshot, rebuilding it if a
// structural change dropped it.
func (o *Org) adjacency() *adjSnapshot {
	if o.adj != nil {
		return o.adj
	}
	n := len(o.States)
	a := &adjSnapshot{
		childStart:  make([]int32, n+1),
		parentStart: make([]int32, n+1),
		kinds:       make([]uint8, n),
	}
	nc, np := 0, 0
	for _, s := range o.States {
		nc += len(s.Children)
		np += len(s.Parents)
	}
	a.children = make([]int32, 0, nc)
	a.parents = make([]int32, 0, np)
	for i, s := range o.States {
		a.kinds[i] = uint8(s.Kind)
		for _, c := range s.Children {
			a.children = append(a.children, int32(c))
		}
		for _, p := range s.Parents {
			a.parents = append(a.parents, int32(p))
		}
		a.childStart[i+1] = int32(len(a.children))
		a.parentStart[i+1] = int32(len(a.parents))
		if len(s.Children) > a.maxChildren {
			a.maxChildren = len(s.Children)
		}
	}
	o.adj = a
	return a
}

// Topo returns a topological order over all live states reachable from
// the root (parents before children), computing and caching it on
// demand. It panics if a cycle is detected — operations are responsible
// for never creating one.
//
// The order is the same as Kahn's algorithm seeded at the root with a
// FIFO queue and children visited in insertion order; it is fully
// deterministic and, in particular, identical to the pre-arena
// map-based implementation.
func (o *Org) Topo() []StateID {
	if o.topo != nil {
		return o.topo
	}
	a := o.adjacency()
	n := len(o.States)
	// Reachability from the root.
	reach := make([]bool, n)
	reached := 0
	stack := []StateID{o.Root}
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if reach[id] {
			continue
		}
		reach[id] = true
		reached++
		for _, c := range a.childrenOf(id) {
			if !reach[c] {
				stack = append(stack, StateID(c))
			}
		}
	}
	indeg := make([]int32, n)
	for id := 0; id < n; id++ {
		if !reach[id] {
			continue
		}
		for _, c := range a.childrenOf(StateID(id)) {
			indeg[c]++
		}
	}
	order := make([]StateID, 0, reached)
	queue := make([]StateID, 0, reached)
	if indeg[o.Root] == 0 {
		queue = append(queue, o.Root)
	}
	for head := 0; head < len(queue); head++ {
		id := queue[head]
		order = append(order, id)
		for _, c := range a.childrenOf(id) {
			indeg[c]--
			if indeg[c] == 0 {
				queue = append(queue, StateID(c))
			}
		}
	}
	if len(order) != reached {
		panic(fmt.Sprintf("core: cycle detected (%d of %d states ordered)", len(order), reached))
	}
	o.topo = order
	return order
}
