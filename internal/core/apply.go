package core

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strconv"
	"time"

	"lakenav/internal/lake"
	"lakenav/vector"
)

// This file is the organization layer of incremental ingest: replaying
// one journal batch into an existing organization instead of rebuilding
// it from scratch. The contract with the lake layer is ChangeSummary
// (lake.ApplyChanges + lake.ComputeTopicsFor must both have run before
// ApplyLakeBatch), and the contract with the optimizer is the returned
// ChangeSet, which ReoptimizeLocal uses to re-search only the part of
// the structure the batch disturbed.
//
// Incremental apply mirrors buildBase's construction order exactly —
// leaves in ascending attribute order, tag-state children in data(t)
// order, new tag states appended under the root in tag-subset order —
// so an add-only batch applied incrementally produces a structure
// canonically identical (StructureHash) to a from-scratch rebuild over
// the post-batch lake, with bit-identical effectiveness. Removal
// batches stay canonically identical in structure; their accumulator
// floats may differ from a rebuild's by ulps because RemoveWeighted is
// not an exact floating-point inverse of AddWeighted.
//
// One accepted divergence: a tag that existed before the batch but was
// unusable (no embedded text attribute) and becomes usable later gets
// its tag state appended at the end of the root's child list, whereas a
// rebuild would place it at its first-seen position. The structures are
// equivalent for navigation; only the canonical ordering differs.

// ApplyLakeBatch replays one applied lake change batch into the
// organization. tags is the organization's tag subset (one dimension of
// a multi-dimensional organization); nil means every lake tag, matching
// BuildConfig.Tags. The lake must already hold the batch
// (lake.ApplyChanges) with topics computed for the added attributes
// (lake.ComputeTopicsFor).
//
// The returned ChangeSet records every state the batch touched and
// seeds ReoptimizeLocal. The change is not undoable: on error the
// organization may be partially mutated and must be discarded (the
// caller keeps serving the previous generation and rebuilds).
func (o *Org) ApplyLakeBatch(sum *lake.ChangeSummary, tags []string) (*ChangeSet, error) {
	l := o.Lake
	if l.Dim() == 0 {
		return nil, fmt.Errorf("core: apply batch: lake topics not computed")
	}
	if tags == nil {
		tags = l.Tags()
	}
	tagSet := make(map[string]bool, len(tags))
	for _, t := range tags {
		tagSet[t] = true
	}

	cs := o.BeginChanges()
	defer o.EndChanges()
	// The undo log is discarded: incremental apply is one-way (the
	// previous generation is the rollback mechanism, not Undo).
	u := &UndoLog{}

	// Removals: eliminate the leaf of every removed organized attribute.
	// A leaf has no children, so eliminate reduces to unlinking it from
	// its tag-state parents with domain maintenance — support for the
	// attribute drains out of every ancestor.
	removed := make(map[lake.AttrID]bool, len(sum.RemovedAttrs))
	for _, a := range sum.RemovedAttrs {
		removed[a] = true
		leaf, ok := o.leafOf[a]
		if !ok {
			continue // not organized in this dimension
		}
		o.eliminate(u, leaf)
		delete(o.leafOf, a)
	}

	// Tag states that lost their last leaf are eliminated; the tag's
	// label is scrubbed from ancestor tag lists. Iterating l.Tags()
	// keeps the order deterministic.
	for _, tag := range l.Tags() {
		ts, ok := o.tagState[tag]
		if !ok {
			continue
		}
		s := o.States[ts]
		if s.deleted || len(s.Children) > 0 {
			continue
		}
		o.eliminate(u, ts)
		delete(o.tagState, tag)
		o.dropTagLabel(tag)
	}

	// Cascade: interior states left childless by the eliminations above
	// (their domains are already empty, so this is pure unlinking).
	for {
		changed := false
		for _, s := range o.States {
			if s.deleted || s.Kind != KindInterior || s.ID == o.Root {
				continue
			}
			if len(s.Children) == 0 {
				o.eliminate(u, s.ID)
				changed = true
			}
		}
		if !changed {
			break
		}
	}

	// Additions: collect the batch's organizable attributes — text,
	// embedded, carrying at least one tag of this organization's subset
	// — in ascending order, the order buildBase creates leaves in.
	var newAttrs []lake.AttrID
	for _, a := range sum.AddedAttrs {
		attr := l.Attr(a)
		if attr.Removed || !attr.Text || attr.EmbCount == 0 {
			continue
		}
		if _, ok := o.leafOf[a]; ok {
			continue
		}
		for _, tg := range l.AttrTags(a) {
			if tagSet[tg] {
				newAttrs = append(newAttrs, a)
				break
			}
		}
	}
	sort.Slice(newAttrs, func(i, j int) bool { return newAttrs[i] < newAttrs[j] })

	for _, a := range newAttrs {
		s := o.newState(KindLeaf)
		s.Attr = a
		s.setTopic(l.Attr(a).Topic)
		o.leafOf[a] = s.ID
		// newState does not record notes; seed the change set so
		// ReoptimizeLocal proposes operations for the new leaf.
		o.noteTopicChanged(s.ID)
	}

	// Link new leaves under their existing tag states. Appending in
	// ascending attribute order reproduces data(t) order: within one
	// batch, attribute IDs are assigned in the same sequence tags index
	// them.
	for _, a := range newAttrs {
		for _, tg := range l.AttrTags(a) {
			ts, ok := o.tagState[tg]
			if !ok || o.States[ts].deleted {
				continue
			}
			if !o.hasEdge(ts, o.leafOf[a]) {
				o.linkChild(ts, o.leafOf[a])
			}
		}
	}

	// Materialize tag states for subset tags that now have organized
	// attributes but no live state — brand-new tags, repopulated tags,
	// and previously-unusable tags that just gained embedded content.
	// Members come from data(t) filtered to organized attributes, the
	// same rule buildBase applies.
	var newTagStates []StateID
	for _, tg := range tags {
		if ts, ok := o.tagState[tg]; ok && !o.States[ts].deleted {
			continue
		}
		var members []StateID
		for _, a := range l.TextTagAttrs(tg) {
			if leaf, ok := o.leafOf[a]; ok {
				members = append(members, leaf)
			}
		}
		if len(members) == 0 {
			continue
		}
		s := o.newState(KindTag)
		s.Tags = []string{tg}
		s.support = make(map[lake.AttrID]int)
		s.run = vector.NewRunning(l.Dim())
		o.tagState[tg] = s.ID
		o.noteTopicChanged(s.ID)
		for _, leaf := range members {
			o.linkChild(s.ID, leaf)
		}
		newTagStates = append(newTagStates, s.ID)
	}
	for _, ts := range newTagStates {
		o.linkChild(o.Root, ts)
		root := o.States[o.Root]
		root.Tags = append(root.Tags, o.States[ts].Tags...)
	}

	if len(o.States[o.Root].Children) == 0 {
		return nil, fmt.Errorf("core: apply batch: organization has no tag states left")
	}

	// Refresh the organized attribute set and its index. Fresh slices:
	// callers may still hold the previous Attrs() view.
	attrs := make([]lake.AttrID, 0, len(o.attrs)+len(newAttrs))
	for _, a := range o.attrs {
		if !removed[a] {
			attrs = append(attrs, a)
		}
	}
	attrs = append(attrs, newAttrs...)
	sort.Slice(attrs, func(i, j int) bool { return attrs[i] < attrs[j] })
	o.attrs = attrs
	o.buildAttrIndex()
	return cs, nil
}

// dropTagLabel removes every occurrence of tag from the advisory Tags
// lists of live non-leaf states.
func (o *Org) dropTagLabel(tag string) {
	for _, s := range o.States {
		if s.deleted || s.Kind == KindLeaf || len(s.Tags) == 0 {
			continue
		}
		kept := s.Tags[:0]
		for _, t := range s.Tags {
			if t != tag {
				kept = append(kept, t)
			}
		}
		s.Tags = kept
	}
}

// ApplyLakeBatch replays one lake change batch into every dimension.
// Tags not yet assigned to a dimension — new tags, plus tags that only
// now became organizable — are routed to the dimension whose root topic
// is most similar to the tag's topic (ties to the lowest dimension;
// tags with no embedded content go to dimension 0) and recorded in
// TagGroups, so later batches and exports see a stable assignment.
// It returns one ChangeSet per dimension, aligned with Orgs.
func (m *MultiDim) ApplyLakeBatch(sum *lake.ChangeSummary) ([]*ChangeSet, error) {
	l := m.Lake
	if l.Dim() == 0 {
		return nil, fmt.Errorf("core: apply batch: lake topics not computed")
	}

	grouped := make(map[string]bool)
	for _, g := range m.TagGroups {
		for _, tg := range g {
			grouped[tg] = true
		}
	}
	// Candidate tags to route: carried by an added attribute or first
	// seen in this batch, not yet in any group. l.Tags() order keeps
	// routing deterministic.
	carried := make(map[string]bool)
	for _, a := range sum.AddedAttrs {
		for _, tg := range l.AttrTags(a) {
			carried[tg] = true
		}
	}
	for _, tg := range sum.NewTags {
		carried[tg] = true
	}
	for _, tg := range l.Tags() {
		if !carried[tg] || grouped[tg] {
			continue
		}
		d := 0
		if len(m.Orgs) > 1 {
			if tv, ok := l.TagTopic(tg); ok {
				nv := vector.Norm(tv)
				best := -2.0
				for i, org := range m.Orgs {
					rt := org.States[org.Root]
					if c := vector.CosineNorms(tv, rt.topic, nv, rt.topicNorm); c > best {
						best, d = c, i
					}
				}
			}
		}
		m.TagGroups[d] = append(m.TagGroups[d], tg)
	}

	css := make([]*ChangeSet, len(m.Orgs))
	for i, org := range m.Orgs {
		cs, err := org.ApplyLakeBatch(sum, m.TagGroups[i])
		if err != nil {
			return nil, fmt.Errorf("core: dimension %d: %w", i, err)
		}
		css[i] = cs
	}
	return css, nil
}

// ReoptimizeLocal runs the local search over only the states a batch
// disturbed: the change set's members plus the parents of every state
// whose topic moved (softmax denominators are shared across siblings).
// Passes repeat — with reachability refreshed per pass, like Optimize's
// traversals — until a full pass accepts nothing or cfg.MaxIterations
// proposals have been made. Acceptance is always greedy regardless of
// cfg.AcceptExponent: there is no best-trail unwinding here, so a
// downhill move would be kept.
//
// The evaluator is built fresh after the batch was applied (its
// per-state arrays are sized at construction), which is why this is a
// separate entry point rather than a resumed Optimize.
func ReoptimizeLocal(org *Org, cs *ChangeSet, cfg OptimizeConfig) (*OptimizeStats, error) {
	cfg.defaults()
	if cfg.Checkpoint != nil {
		return nil, fmt.Errorf("core: ReoptimizeLocal cannot checkpoint")
	}
	affected := make(map[StateID]bool)
	add := func(id StateID) {
		if id != org.Root && !org.States[id].deleted {
			affected[id] = true
		}
	}
	for id := range cs.ChildrenChanged {
		add(id)
	}
	for id := range cs.TopicChanged {
		add(id)
		for _, p := range org.States[id].Parents {
			add(p)
		}
	}

	src := newSearchSource(cfg.Seed)
	rng := newSearchRand(src)
	ev, err := NewEvaluatorWorkers(org, cfg.RepFraction, rng, cfg.Workers)
	if err != nil {
		return nil, err
	}
	started := time.Now()
	stats := &OptimizeStats{InitialEff: ev.Effectiveness()}
	for {
		acceptedThisPass := false
		meanReach := ev.MeanReach()
		levels := org.Levels()
		order := make([]StateID, 0, len(affected))
		for id := range affected {
			if !org.States[id].deleted && levels[id] >= 0 {
				order = append(order, id)
			}
		}
		sort.Slice(order, func(i, j int) bool {
			a, b := order[i], order[j]
			if levels[a] != levels[b] {
				return levels[a] < levels[b]
			}
			if meanReach[a] != meanReach[b] {
				return meanReach[a] < meanReach[b]
			}
			return a < b
		})
		for _, sid := range order {
			if stats.Iterations >= cfg.MaxIterations {
				break
			}
			if org.States[sid].deleted {
				continue // eliminated earlier in this pass
			}
			_, accepted, proposed, err := proposeAndDecide(org, ev, sid, levels, meanReach, rng, -1)
			if err != nil {
				return nil, err
			}
			if !proposed {
				continue
			}
			stats.Iterations++
			if accepted {
				stats.Accepted++
				acceptedThisPass = true
			} else {
				stats.Rejected++
			}
		}
		if !acceptedThisPass || stats.Iterations >= cfg.MaxIterations {
			break
		}
	}
	stats.FinalEff = ev.Effectiveness()
	stats.Duration = time.Since(started)
	if err := orgSane(org); err != nil {
		return stats, err
	}
	return stats, nil
}

// StructureHash returns a canonical digest of the organization:
// independent of state IDs and construction history, sensitive to
// structure (parent/child topology with child order), leaf attribute
// bindings, and tag-state labels. Two organizations with equal hashes
// navigate identically. Interior Tags lists are advisory (operations do
// not maintain them) and are excluded.
func (o *Org) StructureHash() string {
	// Pass 1: canonical preorder numbering from the root, children in
	// child-list order.
	num := make(map[StateID]int, len(o.States))
	var order []StateID
	var visit func(id StateID)
	visit = func(id StateID) {
		if _, ok := num[id]; ok {
			return
		}
		num[id] = len(num)
		order = append(order, id)
		for _, c := range o.States[id].Children {
			visit(c)
		}
	}
	visit(o.Root)

	// Pass 2: serialize each state under its canonical number.
	h := sha256.New()
	for _, id := range order {
		s := o.States[id]
		switch s.Kind {
		case KindLeaf:
			fmt.Fprintf(h, "leaf %s", o.Lake.Attr(s.Attr).QualifiedName(o.Lake))
		case KindTag:
			fmt.Fprintf(h, "tag %s", s.Tags[0])
		default:
			_, _ = h.Write([]byte("interior")) // hash.Hash.Write never fails
		}
		for _, c := range s.Children {
			_, _ = h.Write([]byte(" " + strconv.Itoa(num[c]))) // hash.Hash.Write never fails
		}
		_, _ = h.Write([]byte("\n")) // hash.Hash.Write never fails
	}
	return hex.EncodeToString(h.Sum(nil))
}

// StructureHash digests every dimension's structure in order.
func (m *MultiDim) StructureHash() string {
	h := sha256.New()
	for _, org := range m.Orgs {
		_, _ = h.Write([]byte(org.StructureHash() + "\n")) // hash.Hash.Write never fails
	}
	return hex.EncodeToString(h.Sum(nil))
}
