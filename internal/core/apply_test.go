package core

import (
	"bytes"
	"encoding/json"
	"testing"

	"lakenav/internal/lake"
)

// applyBatch pushes one change batch through the lake and the
// organization, failing the test on any error.
func applyBatch(t *testing.T, l *lake.Lake, o *Org, add []lake.TableChange, remove []string) *ChangeSet {
	t.Helper()
	sum, err := l.ApplyChanges(add, remove)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.ComputeTopicsFor(axisModel{}, sum.AddedAttrs); err != nil {
		t.Fatal(err)
	}
	cs, err := o.ApplyLakeBatch(sum, nil)
	if err != nil {
		t.Fatal(err)
	}
	return cs
}

func TestApplyLakeBatchAddOnlyMatchesRebuild(t *testing.T) {
	l := testLake(t)
	org, err := NewFlat(l, BuildConfig{})
	if err != nil {
		t.Fatal(err)
	}
	cs := applyBatch(t, l, org, []lake.TableChange{
		// harbors extends the existing fishery tag and introduces port;
		// the fee attribute is numeric and must stay unorganized.
		{Name: "harbors", Tags: []string{"fishery", "port"}, Attrs: []lake.AttrSpec{
			{Name: "dock", Values: []string{"fishdock", "fishpier"}},
			{Name: "fee", Values: []string{"1", "2"}},
		}},
		{Name: "ledger", Tags: []string{"tax"}, Attrs: []lake.AttrSpec{
			{Name: "entry", Values: []string{"taxc", "taxd"}},
		}},
	}, nil)
	if err := org.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(cs.TopicChanged) == 0 || len(cs.ChildrenChanged) == 0 {
		t.Fatalf("change set empty: %+v", cs)
	}
	if org.TagState("port") == -1 {
		t.Fatal("new tag port not materialized")
	}

	// The incremental result must be canonically identical to a
	// from-scratch rebuild over the post-batch lake — including
	// bit-identical effectiveness for an add-only batch.
	rebuilt, err := NewFlat(l, BuildConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := org.StructureHash(), rebuilt.StructureHash(); got != want {
		t.Fatalf("incremental structure %s diverges from rebuild %s", got, want)
	}
	if got, want := org.Effectiveness(), rebuilt.Effectiveness(); got != want {
		t.Fatalf("incremental effectiveness %v, rebuild %v (must be bit-identical)", got, want)
	}
}

func TestApplyLakeBatchRemoveMatchesRebuildStructure(t *testing.T) {
	l := testLake(t)
	org, err := NewFlat(l, BuildConfig{})
	if err != nil {
		t.Fatal(err)
	}
	urban, _ := l.TableByName("urban")
	district := urban.Attrs[0]
	// Removing urban empties the city tag; removing inspections drops
	// the shared fishery/grain attribute; mills repopulates grain.
	applyBatch(t, l, org, []lake.TableChange{
		{Name: "mills", Tags: []string{"grain"}, Attrs: []lake.AttrSpec{
			{Name: "mill", Values: []string{"graind", "graine"}},
		}},
	}, []string{"urban", "inspections"})
	if err := org.Validate(); err != nil {
		t.Fatal(err)
	}
	if org.TagState("city") != -1 {
		t.Fatal("emptied tag city still has a state")
	}
	if org.Leaf(district) != -1 {
		t.Fatal("removed attribute still has a leaf")
	}

	rebuilt, err := NewFlat(l, BuildConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := org.StructureHash(), rebuilt.StructureHash(); got != want {
		t.Fatalf("incremental structure %s diverges from rebuild %s", got, want)
	}
	// Removal accumulators may drift by ulps (floating-point
	// subtraction is not an exact inverse), but never materially.
	got, want := org.Effectiveness(), rebuilt.Effectiveness()
	if diff := got - want; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("incremental effectiveness %v, rebuild %v", got, want)
	}
}

func TestApplyLakeBatchEmptyingOrgFails(t *testing.T) {
	l := testLake(t)
	org, err := NewFlat(l, BuildConfig{})
	if err != nil {
		t.Fatal(err)
	}
	sum, err := l.ApplyChanges(nil,
		[]string{"fishlist", "grains", "urban", "budget", "inspections"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := org.ApplyLakeBatch(sum, nil); err == nil {
		t.Fatal("batch removing every table must fail incremental apply")
	}
}

func TestReoptimizeLocalDeterministicAndMonotone(t *testing.T) {
	run := func() (*Org, *OptimizeStats) {
		l := testLake(t)
		org, err := NewClustered(l, BuildConfig{})
		if err != nil {
			t.Fatal(err)
		}
		cs := applyBatch(t, l, org, []lake.TableChange{
			{Name: "harbors", Tags: []string{"fishery", "port"}, Attrs: []lake.AttrSpec{
				{Name: "dock", Values: []string{"fishdock", "fishpier"}},
			}},
			{Name: "ledger", Tags: []string{"tax"}, Attrs: []lake.AttrSpec{
				{Name: "entry", Values: []string{"taxc", "taxd"}},
			}},
		}, nil)
		stats, err := ReoptimizeLocal(org, cs, OptimizeConfig{Seed: 7, MaxIterations: 200})
		if err != nil {
			t.Fatal(err)
		}
		if err := org.Validate(); err != nil {
			t.Fatal(err)
		}
		return org, stats
	}
	o1, s1 := run()
	o2, s2 := run()
	if s1.FinalEff < s1.InitialEff {
		t.Errorf("localized reoptimization degraded effectiveness: %v -> %v",
			s1.InitialEff, s1.FinalEff)
	}
	if s1.Accepted+s1.Rejected != s1.Iterations {
		t.Errorf("accept/reject counts inconsistent: %+v", s1)
	}
	if o1.StructureHash() != o2.StructureHash() {
		t.Error("same seed produced different structures")
	}
	if s1.FinalEff != s2.FinalEff {
		t.Errorf("same seed produced different effectiveness: %v vs %v",
			s1.FinalEff, s2.FinalEff)
	}
	// The cached evaluator effectiveness must agree with recomputation.
	if direct := o1.Effectiveness(); s1.FinalEff != direct {
		t.Errorf("stats eff %v != direct %v", s1.FinalEff, direct)
	}
}

func TestMultiDimApplyLakeBatch(t *testing.T) {
	l := testLake(t)
	md, _, err := BuildMultiDim(l, MultiDimConfig{K: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	sum, err := l.ApplyChanges([]lake.TableChange{
		{Name: "harbors", Tags: []string{"fishery", "port"}, Attrs: []lake.AttrSpec{
			{Name: "dock", Values: []string{"fishdock", "fishpier"}},
		}},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.ComputeTopicsFor(axisModel{}, sum.AddedAttrs); err != nil {
		t.Fatal(err)
	}
	css, err := md.ApplyLakeBatch(sum)
	if err != nil {
		t.Fatal(err)
	}
	if len(css) != len(md.Orgs) {
		t.Fatalf("%d change sets for %d dimensions", len(css), len(md.Orgs))
	}
	// port must land in exactly one tag group and be materialized in
	// exactly that dimension.
	portDim := -1
	for i, g := range md.TagGroups {
		for _, tg := range g {
			if tg == "port" {
				if portDim != -1 {
					t.Fatal("port routed to two dimensions")
				}
				portDim = i
			}
		}
	}
	if portDim == -1 {
		t.Fatal("port not routed to any dimension")
	}
	for i, org := range md.Orgs {
		if err := org.Validate(); err != nil {
			t.Fatalf("dimension %d: %v", i, err)
		}
		if has := org.TagState("port") != -1; has != (i == portDim) {
			t.Errorf("dimension %d: tag state presence %v, routed to %d", i, has, portDim)
		}
	}
	if eff := md.Effectiveness(); eff <= 0 {
		t.Errorf("effectiveness %v after batch", eff)
	}
}

// TestReplayDeterminism pins the convergence property crash recovery
// relies on: replaying the same batch prefix from the same seed state
// yields byte-identical organization exports, so a journal truncated to
// any committed prefix recovers to exactly the organization a clean run
// over that prefix produces.
func TestReplayDeterminism(t *testing.T) {
	batches := []struct {
		add    []lake.TableChange
		remove []string
	}{
		{add: []lake.TableChange{
			{Name: "harbors", Tags: []string{"fishery", "port"}, Attrs: []lake.AttrSpec{
				{Name: "dock", Values: []string{"fishdock", "fishpier"}},
			}},
		}},
		{remove: []string{"urban"}},
		{add: []lake.TableChange{
			{Name: "mills", Tags: []string{"grain"}, Attrs: []lake.AttrSpec{
				{Name: "mill", Values: []string{"graind", "graine"}},
			}},
		}, remove: []string{"inspections"}},
	}
	replay := func(n int) []byte {
		l := testLake(t)
		org, err := NewFlat(l, BuildConfig{})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			applyBatch(t, l, org, batches[i].add, batches[i].remove)
		}
		out, err := json.Marshal(org.Export())
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	for n := 0; n <= len(batches); n++ {
		if !bytes.Equal(replay(n), replay(n)) {
			t.Fatalf("replay of %d batches is not deterministic", n)
		}
	}
}
