package core

import (
	"bytes"
	"encoding/json"
	"testing"
)

func TestExport(t *testing.T) {
	o := clusteredOrg(t)
	ex := o.Export()
	if ex.Gamma != o.Gamma {
		t.Errorf("gamma = %v", ex.Gamma)
	}
	if ex.Root != int(o.Root) {
		t.Errorf("root = %d", ex.Root)
	}
	if len(ex.States) != o.LiveStates() {
		t.Errorf("states = %d, want %d", len(ex.States), o.LiveStates())
	}
	// Every child reference resolves to an exported state.
	ids := make(map[int]ExportedState, len(ex.States))
	for _, s := range ex.States {
		ids[s.ID] = s
	}
	leaves, tags := 0, 0
	for _, s := range ex.States {
		for _, c := range s.Children {
			if _, ok := ids[c]; !ok {
				t.Fatalf("state %d references missing child %d", s.ID, c)
			}
		}
		switch s.Kind {
		case "leaf":
			leaves++
			if s.Attr == "" {
				t.Errorf("leaf %d has no attr name", s.ID)
			}
		case "tag":
			tags++
			if len(s.Tags) != 1 {
				t.Errorf("tag state %d has tags %v", s.ID, s.Tags)
			}
		}
		if s.Label == "" {
			t.Errorf("state %d has empty label", s.ID)
		}
	}
	if leaves != len(o.Attrs()) {
		t.Errorf("exported leaves = %d, want %d", leaves, len(o.Attrs()))
	}
	if tags == 0 {
		t.Error("no tag states exported")
	}
}

func TestExportSkipsDeleted(t *testing.T) {
	o := clusteredOrg(t)
	r := pickInterior(t, o)
	s := o.State(r).Children[0]
	o.DeleteParentOp(s, r)
	ex := o.Export()
	for _, es := range ex.States {
		if es.ID == int(r) {
			t.Fatal("deleted state exported")
		}
	}
}

func TestWriteJSONRoundTrips(t *testing.T) {
	o := clusteredOrg(t)
	var buf bytes.Buffer
	if err := o.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var ex ExportedOrg
	if err := json.Unmarshal(buf.Bytes(), &ex); err != nil {
		t.Fatal(err)
	}
	if len(ex.States) != o.LiveStates() {
		t.Errorf("decoded states = %d", len(ex.States))
	}
}

func TestComputeMetrics(t *testing.T) {
	o := clusteredOrg(t)
	m := ComputeMetrics(o)
	if m.Leaves != len(o.Attrs()) {
		t.Errorf("leaves = %d", m.Leaves)
	}
	if m.TagStates != 4 {
		t.Errorf("tag states = %d", m.TagStates)
	}
	if m.InteriorStates != 3 {
		t.Errorf("interior = %d", m.InteriorStates)
	}
	if m.Depth < 3 {
		t.Errorf("depth = %d", m.Depth)
	}
	if m.MaxBranching < 2 || m.MeanBranching <= 0 {
		t.Errorf("branching = %+v", m)
	}
	// product has two tag parents in the test lake.
	if m.MultiParentLeaves != 1 {
		t.Errorf("multiparent leaves = %d", m.MultiParentLeaves)
	}
	if m.String() == "" {
		t.Error("empty String")
	}
}

func TestMultiDimExportImport(t *testing.T) {
	l := testLake(t)
	m, _, err := BuildMultiDim(l, MultiDimConfig{K: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadMultiDim(l, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Orgs) != len(m.Orgs) {
		t.Fatalf("dims = %d, want %d", len(got.Orgs), len(m.Orgs))
	}
	if a, b := m.Effectiveness(), got.Effectiveness(); a != b {
		t.Errorf("effectiveness %v != %v", b, a)
	}
	if _, err := ReadMultiDim(l, bytes.NewReader([]byte("[]"))); err == nil {
		t.Error("garbage accepted")
	}
	empty := &ExportedMultiDim{}
	if _, err := ImportMultiDim(l, empty); err == nil {
		t.Error("empty multidim accepted")
	}
}
