package embedding

import (
	"strings"
	"unicode"

	"lakenav/vector"
)

// CoverageStats records how much of a value population had embedding
// vectors when computing a topic vector. The paper reports that fastText
// covers ~70% of text-attribute values in its datasets; downstream code
// can inspect coverage to decide whether a topic vector is trustworthy.
type CoverageStats struct {
	// Values is the total number of values considered.
	Values int
	// Embedded is the number of values with at least one embedded token.
	Embedded int
	// Tokens is the total number of tokens considered.
	Tokens int
	// EmbeddedTokens is the number of tokens found in the vocabulary.
	EmbeddedTokens int
}

// ValueCoverage returns the fraction of values with at least one embedded
// token, or 0 when no values were seen.
func (c CoverageStats) ValueCoverage() float64 {
	if c.Values == 0 {
		return 0
	}
	return float64(c.Embedded) / float64(c.Values)
}

// TokenCoverage returns the fraction of tokens found in the vocabulary,
// or 0 when no tokens were seen.
func (c CoverageStats) TokenCoverage() float64 {
	if c.Tokens == 0 {
		return 0
	}
	return float64(c.EmbeddedTokens) / float64(c.Tokens)
}

// Tokenize splits a raw data value into lower-case word tokens, dropping
// punctuation and digits-only tokens. It is intentionally simple: open
// data values are short strings and the embedding model operates on
// single words, as fastText does in the paper.
func Tokenize(value string) []string {
	fields := strings.FieldsFunc(value, func(r rune) bool {
		return !unicode.IsLetter(r) && !unicode.IsDigit(r) && r != '_'
	})
	out := fields[:0]
	for _, f := range fields {
		allDigits := true
		for _, r := range f {
			if !unicode.IsDigit(r) {
				allDigits = false
				break
			}
		}
		if allDigits {
			continue
		}
		out = append(out, strings.ToLower(f))
	}
	return out
}

// MeanVector computes the topic vector of a value population: the sample
// mean of the embeddings of all embedded tokens of all values (Sec 3.1,
// Definition 4). It also returns coverage statistics. ok is false when no
// token was embedded, in which case the returned vector is zero.
func MeanVector(m Model, values []string) (vector.Vector, CoverageStats, bool) {
	run := vector.NewRunning(m.Dim())
	var stats CoverageStats
	for _, val := range values {
		stats.Values++
		embedded := false
		for _, tok := range Tokenize(val) {
			stats.Tokens++
			if v, ok := m.Lookup(tok); ok {
				stats.EmbeddedTokens++
				run.Add(v)
				embedded = true
			}
		}
		if embedded {
			stats.Embedded++
		}
	}
	mean, ok := run.Mean()
	return mean, stats, ok
}

// Accumulate adds the embeddings of every embedded token of values into
// run, returning the number of tokens added. It is MeanVector without
// the final division, for callers maintaining running topic vectors.
func Accumulate(m Model, values []string, run *vector.Running) int {
	added := 0
	for _, val := range values {
		for _, tok := range Tokenize(val) {
			if v, ok := m.Lookup(tok); ok {
				run.Add(v)
				added++
			}
		}
	}
	return added
}
