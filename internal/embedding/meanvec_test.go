package embedding

import (
	"reflect"
	"testing"

	"lakenav/vector"
)

func TestTokenize(t *testing.T) {
	tests := []struct {
		in   string
		want []string
	}{
		{"Fisheries and Oceans Canada", []string{"fisheries", "and", "oceans", "canada"}},
		{"food-inspection (2019)", []string{"food", "inspection"}},
		{"12345", nil},
		{"", nil},
		{"  multiple   spaces ", []string{"multiple", "spaces"}},
		{"CO2_levels", []string{"co2_levels"}},
		{"a,b;c", []string{"a", "b", "c"}},
	}
	for _, tt := range tests {
		got := Tokenize(tt.in)
		if len(got) == 0 && len(tt.want) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, tt.want) {
			t.Errorf("Tokenize(%q) = %v, want %v", tt.in, got, tt.want)
		}
	}
}

func TestMeanVector(t *testing.T) {
	s := NewStore(2)
	s.Add("fish", vector.Vector{1, 0})
	s.Add("ocean", vector.Vector{0, 1})

	v, stats, ok := MeanVector(s, []string{"Fish", "ocean", "unknownword"})
	if !ok {
		t.Fatal("MeanVector reported no embeddings")
	}
	if !vector.Equal(v, vector.Vector{0.5, 0.5}, 1e-12) {
		t.Errorf("mean = %v, want {0.5, 0.5}", v)
	}
	if stats.Values != 3 || stats.Embedded != 2 {
		t.Errorf("stats = %+v", stats)
	}
	if got := stats.ValueCoverage(); got < 0.66 || got > 0.67 {
		t.Errorf("ValueCoverage = %v, want 2/3", got)
	}
	if got := stats.TokenCoverage(); got < 0.66 || got > 0.67 {
		t.Errorf("TokenCoverage = %v, want 2/3", got)
	}
}

func TestMeanVectorNoCoverage(t *testing.T) {
	s := NewStore(2)
	v, stats, ok := MeanVector(s, []string{"anything", "at all"})
	if ok {
		t.Error("empty-vocabulary MeanVector reported ok")
	}
	if !vector.Equal(v, vector.Vector{0, 0}, 0) {
		t.Errorf("mean = %v, want zero", v)
	}
	if stats.Embedded != 0 {
		t.Errorf("Embedded = %d, want 0", stats.Embedded)
	}
	if stats.ValueCoverage() != 0 || stats.TokenCoverage() != 0 {
		t.Error("coverage should be 0")
	}
}

func TestMeanVectorMultiTokenValue(t *testing.T) {
	s := NewStore(2)
	s.Add("pacific", vector.Vector{1, 0})
	s.Add("salmon", vector.Vector{0, 1})
	v, stats, ok := MeanVector(s, []string{"Pacific Salmon"})
	if !ok || !vector.Equal(v, vector.Vector{0.5, 0.5}, 1e-12) {
		t.Errorf("mean = %v, ok=%v", v, ok)
	}
	if stats.Values != 1 || stats.Embedded != 1 || stats.Tokens != 2 || stats.EmbeddedTokens != 2 {
		t.Errorf("stats = %+v", stats)
	}
}

func TestAccumulateMatchesMeanVector(t *testing.T) {
	m := NewHashed(8, 3, 1)
	values := []string{"civic center", "transit plan", "energy audit"}
	want, _, _ := MeanVector(m, values)
	run := vector.NewRunning(8)
	n := Accumulate(m, values, run)
	if n != 6 {
		t.Errorf("Accumulate added %d tokens, want 6", n)
	}
	got, ok := run.Mean()
	if !ok || !vector.Equal(want, got, 1e-12) {
		t.Errorf("Accumulate mean = %v, want %v", got, want)
	}
}

func TestCoverageStatsZero(t *testing.T) {
	var c CoverageStats
	if c.ValueCoverage() != 0 || c.TokenCoverage() != 0 {
		t.Error("zero stats should report zero coverage")
	}
}
