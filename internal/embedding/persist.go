package embedding

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"

	"lakenav/internal/atomicio"
	"lakenav/internal/binfmt"
	"lakenav/vector"
)

// Binary store format:
//
//	magic   [8]byte  "LNEMBD01"
//	dim     uint32
//	count   uint32
//	count × { wordLen uint32, word []byte, dim × float64 (LE bits) }
//
// The format is the stand-in for a pretrained embedding file on disk; it
// round-trips a Store exactly and fails loudly on corruption.

var storeMagic = [8]byte{'L', 'N', 'E', 'M', 'B', 'D', '0', '1'}

// maxWordLen bounds a single vocabulary entry; longer lengths in a file
// indicate corruption.
const maxWordLen = 1 << 16

// WriteTo serializes the store to w in the lakenav binary format.
func (s *Store) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var n int64
	write := func(v any) error {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
		n += int64(binary.Size(v))
		return nil
	}
	if err := write(storeMagic); err != nil {
		return n, fmt.Errorf("embedding: write magic: %w", err)
	}
	if err := write(uint32(s.dim)); err != nil {
		return n, fmt.Errorf("embedding: write dim: %w", err)
	}
	if err := write(uint32(len(s.words))); err != nil {
		return n, fmt.Errorf("embedding: write count: %w", err)
	}
	for i, word := range s.words {
		if err := write(uint32(len(word))); err != nil {
			return n, fmt.Errorf("embedding: write word len: %w", err)
		}
		if _, err := bw.WriteString(word); err != nil {
			return n, fmt.Errorf("embedding: write word: %w", err)
		}
		n += int64(len(word))
		for _, x := range s.vecs[i] {
			if err := write(math.Float64bits(x)); err != nil {
				return n, fmt.Errorf("embedding: write component: %w", err)
			}
		}
	}
	if err := bw.Flush(); err != nil {
		return n, fmt.Errorf("embedding: flush: %w", err)
	}
	return n, nil
}

// ReadStore deserializes a store written by WriteTo.
func ReadStore(r io.Reader) (*Store, error) {
	br := bufio.NewReader(r)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("embedding: read magic: %w", err)
	}
	if magic != storeMagic {
		return nil, fmt.Errorf("embedding: bad magic %q", magic)
	}
	var dim, count uint32
	if err := binary.Read(br, binary.LittleEndian, &dim); err != nil {
		return nil, fmt.Errorf("embedding: read dim: %w", err)
	}
	if err := binary.Read(br, binary.LittleEndian, &count); err != nil {
		return nil, fmt.Errorf("embedding: read count: %w", err)
	}
	if dim == 0 || dim > 1<<20 {
		return nil, fmt.Errorf("embedding: implausible dim %d", dim)
	}
	s := NewStore(int(dim))
	buf := make([]byte, 0, 64)
	for i := uint32(0); i < count; i++ {
		var wl uint32
		if err := binary.Read(br, binary.LittleEndian, &wl); err != nil {
			return nil, fmt.Errorf("embedding: read word len (entry %d): %w", i, err)
		}
		if wl > maxWordLen {
			return nil, fmt.Errorf("embedding: implausible word length %d (entry %d)", wl, i)
		}
		if cap(buf) < int(wl) {
			buf = make([]byte, wl)
		}
		buf = buf[:wl]
		if _, err := io.ReadFull(br, buf); err != nil {
			return nil, fmt.Errorf("embedding: read word (entry %d): %w", i, err)
		}
		word := string(buf)
		v := vector.New(int(dim))
		for j := range v {
			var bits uint64
			if err := binary.Read(br, binary.LittleEndian, &bits); err != nil {
				return nil, fmt.Errorf("embedding: read component (entry %d): %w", i, err)
			}
			v[j] = math.Float64frombits(bits)
		}
		s.Add(word, v)
	}
	return s, nil
}

// SaveFile writes the store to path atomically (temp file + fsync +
// rename), so a crash mid-save can never leave a torn store behind.
func (s *Store) SaveFile(path string) error {
	err := atomicio.WriteFile(path, func(w io.Writer) error {
		_, werr := s.WriteTo(w)
		return werr
	})
	if err != nil {
		return fmt.Errorf("embedding: save %s: %w", path, err)
	}
	return nil
}

// LoadFile reads a store previously written with SaveFile or
// SaveFileBin, sniffing the magic so both the container format and the
// legacy LNEMBD01 stream are accepted.
func LoadFile(path string) (*Store, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("embedding: load %s: %w", path, err)
	}
	var head [8]byte
	if n, _ := io.ReadFull(f, head[:]); n == len(head) && binfmt.IsMagic(head[:]) {
		_ = f.Close() // read-only sniff handle
		s, err := loadFileBin(path)
		if err != nil {
			return nil, fmt.Errorf("embedding: load %s: %w", path, err)
		}
		return s, nil
	}
	defer f.Close()
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return nil, fmt.Errorf("embedding: load %s: %w", path, err)
	}
	s, err := ReadStore(f)
	if err != nil {
		return nil, fmt.Errorf("embedding: load %s: %w", path, err)
	}
	return s, nil
}
