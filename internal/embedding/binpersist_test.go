package embedding

import (
	"os"
	"path/filepath"
	"testing"

	"lakenav/internal/faultinject"
	"lakenav/vector"
)

// TestBinStoreFileRoundTrip saves a store in the container format;
// LoadFile must sniff it and return exactly the same vocabulary and
// vectors (bit-exact, tolerance zero).
func TestBinStoreFileRoundTrip(t *testing.T) {
	s := buildTestStore()
	path := filepath.Join(t.TempDir(), "vecs.lnav")
	if err := s.SaveFileBin(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Dim() != s.Dim() || got.Len() != s.Len() {
		t.Fatalf("shape mismatch: dim %d/%d len %d/%d", got.Dim(), s.Dim(), got.Len(), s.Len())
	}
	for _, w := range s.Words() {
		want, _ := s.Lookup(w)
		have, ok := got.Lookup(w)
		if !ok || !vector.Equal(want, have, 0) {
			t.Errorf("word %q: got %v want %v (ok=%v)", w, have, want, ok)
		}
	}
}

// TestBinStoreRejectsCorruption checks torn and bit-flipped binary
// store files are rejected, and that the legacy stream still loads.
func TestBinStoreRejectsCorruption(t *testing.T) {
	s := buildTestStore()
	dir := t.TempDir()
	bin := filepath.Join(dir, "vecs.lnav")
	if err := s.SaveFileBin(bin); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(bin)
	if err != nil {
		t.Fatal(err)
	}
	torn := filepath.Join(dir, "torn.lnav")
	if err := faultinject.TornCopy(bin, torn, 0.6); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadFile(torn); err == nil {
		t.Fatal("torn binary store accepted")
	}
	for _, off := range []int64{9, 40, int64(len(data)) - 4} {
		bad := filepath.Join(dir, "bad.lnav")
		if err := os.WriteFile(bad, data, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := faultinject.CorruptByte(bad, off); err != nil {
			t.Fatal(err)
		}
		if _, err := LoadFile(bad); err == nil {
			t.Fatalf("corrupt byte at %d accepted", off)
		}
	}

	// The legacy LNEMBD01 stream remains loadable next to the container.
	legacy := filepath.Join(dir, "legacy.bin")
	if err := s.SaveFile(legacy); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadFile(legacy); err != nil {
		t.Fatalf("legacy format stopped loading: %v", err)
	}
}
