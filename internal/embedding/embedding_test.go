package embedding

import (
	"math/rand"
	"testing"
	"testing/quick"

	"lakenav/vector"
)

func TestHashedDeterministic(t *testing.T) {
	m := NewHashed(32, 7, 1.0)
	a1, ok1 := m.Lookup("fisheries")
	a2, ok2 := m.Lookup("fisheries")
	if !ok1 || !ok2 {
		t.Fatal("full-coverage model missed a word")
	}
	if !vector.Equal(a1, a2, 0) {
		t.Error("Hashed.Lookup is not deterministic")
	}
}

func TestHashedUnitNorm(t *testing.T) {
	m := NewHashed(32, 7, 1.0)
	v, _ := m.Lookup("economy")
	if n := vector.Norm(v); n < 0.999 || n > 1.001 {
		t.Errorf("norm = %v, want 1", n)
	}
}

func TestHashedDistinctWordsDiffer(t *testing.T) {
	m := NewHashed(64, 7, 1.0)
	a, _ := m.Lookup("grain")
	b, _ := m.Lookup("immigration")
	if c := vector.Cosine(a, b); c > 0.6 {
		t.Errorf("unrelated words too similar: cos=%v", c)
	}
}

func TestHashedCoverage(t *testing.T) {
	m := NewHashed(16, 7, 0.7)
	words := 0
	hits := 0
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 2000; i++ {
		w := randWord(rng)
		words++
		if _, ok := m.Lookup(w); ok {
			hits++
		}
	}
	frac := float64(hits) / float64(words)
	if frac < 0.6 || frac > 0.8 {
		t.Errorf("coverage fraction = %v, want ~0.7", frac)
	}
	// Coverage decision must be deterministic per word.
	_, first := m.Lookup("zebra")
	_, second := m.Lookup("zebra")
	if first != second {
		t.Error("coverage decision not deterministic")
	}
}

func TestHashedSeedChangesVectors(t *testing.T) {
	a, _ := NewHashed(32, 1, 1).Lookup("city")
	b, _ := NewHashed(32, 2, 1).Lookup("city")
	if vector.Equal(a, b, 1e-12) {
		t.Error("different seeds produced identical embeddings")
	}
}

func TestHashedPanicsOnBadConfig(t *testing.T) {
	for name, fn := range map[string]func(){
		"zero dim":      func() { NewHashed(0, 1, 1) },
		"zero coverage": func() { NewHashed(8, 1, 0) },
		"coverage > 1":  func() { NewHashed(8, 1, 1.5) },
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Error("no panic")
				}
			}()
			fn()
		})
	}
}

func randWord(rng *rand.Rand) string {
	n := 3 + rng.Intn(8)
	b := make([]byte, n)
	for i := range b {
		b[i] = byte('a' + rng.Intn(26))
	}
	return string(b)
}

func TestStoreAddLookup(t *testing.T) {
	s := NewStore(2)
	s.Add("a", vector.Vector{1, 0})
	s.Add("b", vector.Vector{0, 1})
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2", s.Len())
	}
	v, ok := s.Lookup("a")
	if !ok || !vector.Equal(v, vector.Vector{1, 0}, 0) {
		t.Errorf("Lookup(a) = %v, %v", v, ok)
	}
	if _, ok := s.Lookup("missing"); ok {
		t.Error("Lookup(missing) reported present")
	}
	// Replacement keeps length.
	s.Add("a", vector.Vector{0.5, 0.5})
	if s.Len() != 2 {
		t.Errorf("Len after replace = %d, want 2", s.Len())
	}
	v, _ = s.Lookup("a")
	if !vector.Equal(v, vector.Vector{0.5, 0.5}, 0) {
		t.Errorf("replaced Lookup(a) = %v", v)
	}
}

func TestStoreAddClones(t *testing.T) {
	s := NewStore(1)
	src := vector.Vector{1}
	s.Add("w", src)
	src[0] = 42
	v, _ := s.Lookup("w")
	if v[0] != 1 {
		t.Error("Store.Add did not clone input")
	}
}

func TestStoreNearest(t *testing.T) {
	s := NewStore(2)
	s.Add("east", vector.Vector{1, 0})
	s.Add("northeast", vector.Vector{1, 1})
	s.Add("north", vector.Vector{0, 1})
	s.Add("west", vector.Vector{-1, 0})

	nn := s.Nearest(vector.Vector{1, 0.1}, 2, nil)
	if len(nn) != 2 {
		t.Fatalf("got %d neighbours, want 2", len(nn))
	}
	if nn[0].Word != "east" || nn[1].Word != "northeast" {
		t.Errorf("neighbours = %v", nn)
	}
	if nn[0].Similarity < nn[1].Similarity {
		t.Error("neighbours not sorted by similarity")
	}

	// exclude filters.
	nn = s.Nearest(vector.Vector{1, 0.1}, 2, map[string]bool{"east": true})
	if nn[0].Word != "northeast" {
		t.Errorf("excluded query returned %v", nn)
	}

	if got := s.Nearest(vector.Vector{1, 0}, 0, nil); got != nil {
		t.Errorf("k=0 returned %v", got)
	}
}

func TestStoreNearestWord(t *testing.T) {
	s := NewStore(2)
	s.Add("a", vector.Vector{1, 0})
	s.Add("b", vector.Vector{1, 0.01})
	nn := s.NearestWord("a", 5, true)
	if len(nn) != 1 || nn[0].Word != "b" {
		t.Errorf("NearestWord = %v", nn)
	}
	if s.NearestWord("missing", 3, false) != nil {
		t.Error("NearestWord on missing word returned neighbours")
	}
}

func TestTopicSpaceGroundTruth(t *testing.T) {
	cfg := TopicSpaceConfig{Dim: 32, Topics: 20, WordsPerTopic: 30, Sigma: 0.25, MaxCentroidCosine: 0.5, Seed: 3}
	ts, err := NewTopicSpace(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(ts.Topics()); got != 20 {
		t.Fatalf("topics = %d, want 20", got)
	}
	// Every topic word should be closer to its own centroid than to any
	// other centroid.
	for ti, topic := range ts.Topics() {
		cv, _ := ts.Lookup(topic)
		for w := 0; w < 5; w++ {
			word := TopicWordName(ti, w)
			wv, ok := ts.Lookup(word)
			if !ok {
				t.Fatalf("missing topic word %s", word)
			}
			own := vector.Cosine(wv, cv)
			for tj, other := range ts.Topics() {
				if tj == ti {
					continue
				}
				ov, _ := ts.Lookup(other)
				if vector.Cosine(wv, ov) >= own {
					t.Fatalf("word %s closer to %s than its own topic %s", word, other, topic)
				}
			}
		}
	}
}

func TestTopicSpaceCentroidSeparation(t *testing.T) {
	cfg := TopicSpaceConfig{Dim: 32, Topics: 15, WordsPerTopic: 5, Sigma: 0.2, MaxCentroidCosine: 0.4, Seed: 5}
	ts, err := NewTopicSpace(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tops := ts.Topics()
	for i := range tops {
		vi, _ := ts.Lookup(tops[i])
		for j := i + 1; j < len(tops); j++ {
			vj, _ := ts.Lookup(tops[j])
			if c := vector.Cosine(vi, vj); c > 0.4 {
				t.Errorf("centroids %s,%s too close: cos=%v", tops[i], tops[j], c)
			}
		}
	}
}

func TestTopicSpaceTopicWords(t *testing.T) {
	cfg := TopicSpaceConfig{Dim: 32, Topics: 5, WordsPerTopic: 50, Sigma: 0.2, MaxCentroidCosine: 0.4, Seed: 7}
	ts, err := NewTopicSpace(cfg)
	if err != nil {
		t.Fatal(err)
	}
	topic := ts.Topics()[0]
	nn := ts.TopicWords(topic, 10)
	if len(nn) != 10 {
		t.Fatalf("TopicWords returned %d, want 10", len(nn))
	}
	// The nearest words to a centroid should overwhelmingly be its own
	// topic's vocabulary.
	own := 0
	for _, n := range nn {
		if ts.TopicOf(n.Word) == topic {
			own++
		}
	}
	if own < 9 {
		t.Errorf("only %d/10 nearest words belong to the topic", own)
	}
}

func TestTopicSpaceTopicOf(t *testing.T) {
	cfg := TopicSpaceConfig{Dim: 16, Topics: 3, WordsPerTopic: 4, Sigma: 0.3, MaxCentroidCosine: 0.6, Seed: 9}
	ts, err := NewTopicSpace(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := ts.TopicOf(TopicWordName(1, 2)); got != TopicName(1) {
		t.Errorf("TopicOf = %q, want %q", got, TopicName(1))
	}
	if got := ts.TopicOf("unknown"); got != "" {
		t.Errorf("TopicOf(unknown) = %q, want empty", got)
	}
}

func TestTopicSpaceRejectsImpossibleConfig(t *testing.T) {
	// 50 centroids pairwise below cosine 0.05 in 2 dims is impossible.
	cfg := TopicSpaceConfig{Dim: 2, Topics: 50, WordsPerTopic: 1, Sigma: 0.1, MaxCentroidCosine: 0.05, Seed: 1}
	if _, err := NewTopicSpace(cfg); err == nil {
		t.Error("expected error for unsatisfiable separation")
	}
}

func TestTopicSpaceInvalidConfig(t *testing.T) {
	bad := []TopicSpaceConfig{
		{Dim: 0, Topics: 1, WordsPerTopic: 1, Sigma: 0.1},
		{Dim: 4, Topics: 0, WordsPerTopic: 1, Sigma: 0.1},
		{Dim: 4, Topics: 1, WordsPerTopic: 0, Sigma: 0.1},
		{Dim: 4, Topics: 1, WordsPerTopic: 1, Sigma: 0},
	}
	for i, cfg := range bad {
		if _, err := NewTopicSpace(cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}

func TestTopicSpaceDeterministic(t *testing.T) {
	cfg := TopicSpaceConfig{Dim: 16, Topics: 4, WordsPerTopic: 6, Sigma: 0.2, MaxCentroidCosine: 0.6, Seed: 42}
	a, err := NewTopicSpace(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewTopicSpace(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range a.Store().Words() {
		va, _ := a.Lookup(w)
		vb, ok := b.Lookup(w)
		if !ok || !vector.Equal(va, vb, 0) {
			t.Fatalf("word %s differs between identically-seeded spaces", w)
		}
	}
}

// Property: Nearest always returns results sorted descending and at most k.
func TestNearestSortedProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	s := NewStore(8)
	for i := 0; i < 100; i++ {
		v := vector.New(8)
		for j := range v {
			v[j] = rng.NormFloat64()
		}
		s.Add(randWord(rng)+string(rune('a'+i%26)), v)
	}
	f := func() bool {
		q := vector.New(8)
		for j := range q {
			q[j] = rng.NormFloat64()
		}
		k := 1 + rng.Intn(20)
		nn := s.Nearest(q, k, nil)
		if len(nn) > k {
			return false
		}
		for i := 1; i < len(nn); i++ {
			if nn[i].Similarity > nn[i-1].Similarity {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
