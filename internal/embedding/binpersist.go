package embedding

import (
	"fmt"

	"lakenav/internal/binfmt"
	"lakenav/vector"
)

// Container-based store format (binfmt.KindEmbedding): the vocabulary
// in a string table, one ref per entry, and all vectors in a single
// flat float64 block — CRC-guarded and mmap-friendly, unlike the
// legacy LNEMBD01 stream, which LoadFile still accepts for existing
// files.

// embFormatVersion is the kindVer of embedding containers.
const embFormatVersion = 1

// Section ids of a KindEmbedding container.
const (
	secEmbMeta     = 1 // [dim, count]
	secEmbStrOffs  = 2
	secEmbStrBytes = 3
	secEmbWordRefs = 4
	secEmbVecs     = 5
)

// SaveFileBin atomically writes the store to path in the binary
// container format.
func (s *Store) SaveFileBin(path string) error {
	st := binfmt.NewStringTableBuilder()
	wordRefs := make([]uint32, len(s.words))
	vecs := make([]float64, 0, len(s.words)*s.dim)
	for i, word := range s.words {
		wordRefs[i] = st.Ref(word)
		vecs = append(vecs, s.vecs[i]...)
	}
	w := binfmt.NewWriter(binfmt.KindEmbedding, embFormatVersion)
	w.AddUint64s(secEmbMeta, []uint64{uint64(s.dim), uint64(len(s.words))})
	st.AddTo(w, secEmbStrOffs, secEmbStrBytes)
	w.AddUint32s(secEmbWordRefs, wordRefs)
	w.AddFloat64s(secEmbVecs, vecs)
	if err := binfmt.WriteFile(path, w); err != nil {
		return fmt.Errorf("embedding: save %s: %w", path, err)
	}
	return nil
}

// loadFileBin mmaps and decodes a binary store file.
func loadFileBin(path string) (*Store, error) {
	c, err := binfmt.Open(path)
	if err != nil {
		return nil, err
	}
	defer c.Close()
	return decodeBinStore(c)
}

// DecodeBinStore decodes a binary store container from memory.
func DecodeBinStore(data []byte) (*Store, error) {
	c, err := binfmt.New(data)
	if err != nil {
		return nil, err
	}
	defer c.Close()
	return decodeBinStore(c)
}

func decodeBinStore(c *binfmt.Container) (*Store, error) {
	kind, ver := c.Kind()
	if kind != binfmt.KindEmbedding {
		return nil, fmt.Errorf("embedding: decode container kind %d, want %d", kind, binfmt.KindEmbedding)
	}
	if ver != embFormatVersion {
		return nil, fmt.Errorf("embedding: decode format version %d, want %d", ver, embFormatVersion)
	}
	meta, err := c.Uint64s(secEmbMeta)
	if err != nil {
		return nil, err
	}
	if len(meta) != 2 {
		return nil, fmt.Errorf("embedding: decode meta has %d words, want 2", len(meta))
	}
	dim := meta[0]
	if dim == 0 || dim > 1<<20 {
		return nil, fmt.Errorf("embedding: implausible dim %d", dim)
	}
	strs, err := binfmt.ReadStringTable(c, secEmbStrOffs, secEmbStrBytes)
	if err != nil {
		return nil, err
	}
	wordRefs, err := c.Uint32s(secEmbWordRefs)
	if err != nil {
		return nil, err
	}
	if uint64(len(wordRefs)) != meta[1] {
		return nil, fmt.Errorf("embedding: decode meta claims %d entries, section has %d", meta[1], len(wordRefs))
	}
	vecs, err := c.Float64s(secEmbVecs)
	if err != nil {
		return nil, err
	}
	if uint64(len(vecs)) != uint64(len(wordRefs))*dim {
		return nil, fmt.Errorf("embedding: decode vec block has %d floats, want %d", len(vecs), uint64(len(wordRefs))*dim)
	}
	s := NewStore(int(dim))
	for i, ref := range wordRefs {
		word, err := strs.Lookup(ref)
		if err != nil {
			return nil, err
		}
		v := vector.New(int(dim))
		copy(v, vecs[i*int(dim):(i+1)*int(dim)])
		s.Add(word, v)
	}
	return s, nil
}
