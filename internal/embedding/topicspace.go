package embedding

import (
	"fmt"
	"math"
	"math/rand"

	"lakenav/vector"
)

// TopicSpace is a synthetic embedding space with planted topic structure.
// Each topic has a centroid; centroids are rejected-sampled to keep a
// minimum pairwise angular separation (the paper's TagCloud benchmark
// samples 365 words "that are not very close according to Cosine
// similarity"). Topic vocabulary words are Gaussian perturbations of
// their centroid, so the "k most similar words to a tag" construction
// used by the benchmark generator has a known ground truth.
type TopicSpace struct {
	store  *Store
	topics []string
	// centroid index of each topic word, for ground-truth queries.
	topicOf map[string]string
	sigma   float64
}

// TopicSpaceConfig controls synthetic topic-space generation.
type TopicSpaceConfig struct {
	// Dim is the embedding dimension. The paper uses 300-d fastText;
	// lakenav defaults to 64 which preserves near-orthogonality of
	// unrelated words while staying fast on one core.
	Dim int
	// Topics is the number of planted topic centroids.
	Topics int
	// WordsPerTopic is the vocabulary neighbourhood size generated around
	// each centroid. It bounds the attribute cardinality the benchmark
	// can sample (the paper samples 10–1000 values per attribute).
	WordsPerTopic int
	// Sigma is the Gaussian noise scale of neighbourhood words relative
	// to the unit centroid. Smaller sigma means tighter topics.
	Sigma float64
	// MaxCentroidCosine is the rejection threshold: every pair of topic
	// centroids must have cosine similarity at most this value. It is
	// only enforced across families when SuperTopics > 0.
	MaxCentroidCosine float64
	// SuperTopics, when positive, generates centroids in correlated
	// families: SuperTopics family directions are sampled first and each
	// topic centroid is a perturbed family member. Pretrained embedding
	// spaces have exactly this structure (fisheries/oceans/seafood are
	// mutually close), and it is what makes hierarchy construction
	// nontrivial — with near-orthogonal centroids any clustering is
	// already optimal. Zero keeps independent centroids.
	SuperTopics int
	// FamilySpread is the Gaussian perturbation scale of a topic around
	// its family direction (only used when SuperTopics > 0). Smaller
	// values make same-family topics more confusable. Default 0.5.
	FamilySpread float64
	// Seed makes generation reproducible.
	Seed int64
}

// DefaultTopicSpaceConfig mirrors the TagCloud benchmark's scale: 365
// topics with tight vocabularies in a space where unrelated topics are
// nearly orthogonal.
func DefaultTopicSpaceConfig() TopicSpaceConfig {
	return TopicSpaceConfig{
		Dim:               64,
		Topics:            365,
		WordsPerTopic:     1000,
		Sigma:             0.25,
		MaxCentroidCosine: 0.5,
		Seed:              1,
	}
}

// NewTopicSpace generates a topic space from cfg.
func NewTopicSpace(cfg TopicSpaceConfig) (*TopicSpace, error) {
	if cfg.Dim <= 0 || cfg.Topics <= 0 || cfg.WordsPerTopic <= 0 {
		return nil, fmt.Errorf("embedding: invalid topic space config %+v", cfg)
	}
	if cfg.Sigma <= 0 {
		return nil, fmt.Errorf("embedding: sigma must be positive, got %v", cfg.Sigma)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	ts := &TopicSpace{
		store:   NewStore(cfg.Dim),
		topicOf: make(map[string]string),
		sigma:   cfg.Sigma,
	}

	// Family directions for correlated centroid generation.
	var families []vector.Vector
	spread := cfg.FamilySpread
	if spread == 0 {
		spread = 0.5
	}
	if cfg.SuperTopics > 0 {
		for f := 0; f < cfg.SuperTopics; f++ {
			families = append(families, gaussianUnit(rng, cfg.Dim))
		}
	}

	centroids := make([]vector.Vector, 0, cfg.Topics)
	const maxAttempts = 10000
	for t := 0; t < cfg.Topics; t++ {
		var c vector.Vector
		ok := false
		for attempt := 0; attempt < maxAttempts; attempt++ {
			if len(families) > 0 {
				fam := families[t%len(families)]
				c = fam.Clone()
				for i := range c {
					c[i] += rng.NormFloat64() * spread / math.Sqrt(float64(len(c)))
				}
				// Per-component spread/√dim gives a total displacement of
				// ~spread relative to the unit family direction, so the
				// intra-family cosine is ~1/√(1+spread²) independent of
				// dimension.
				c = vector.Normalize(c)
				// With families, the separation constraint intentionally
				// holds only against other families' centroids.
				ok = true
				break
			}
			c = gaussianUnit(rng, cfg.Dim)
			ok = true
			for _, prev := range centroids {
				if vector.Cosine(c, prev) > cfg.MaxCentroidCosine {
					ok = false
					break
				}
			}
			if ok {
				break
			}
		}
		if !ok {
			return nil, fmt.Errorf("embedding: could not place %d centroids with max cosine %v in %d dims",
				cfg.Topics, cfg.MaxCentroidCosine, cfg.Dim)
		}
		name := TopicName(t)
		centroids = append(centroids, c)
		ts.topics = append(ts.topics, name)
		ts.store.Add(name, c)
		ts.topicOf[name] = name

		for w := 0; w < cfg.WordsPerTopic; w++ {
			word := TopicWordName(t, w)
			v := c.Clone()
			for i := range v {
				v[i] += rng.NormFloat64() * cfg.Sigma / math.Sqrt(float64(len(v)))
			}
			// Per-component noise of sigma/√dim gives a dimension-
			// independent angular displacement of ~sigma, keeping the
			// neighbourhood tightly clustered around the centroid while
			// still distinguishing its words.
			v = vector.Normalize(v)
			ts.store.Add(word, v)
			ts.topicOf[word] = name
		}
	}
	return ts, nil
}

// TopicName returns the canonical name of the t-th planted topic.
func TopicName(t int) string { return fmt.Sprintf("topic%03d", t) }

// TopicWordName returns the canonical name of the w-th vocabulary word of
// the t-th planted topic.
func TopicWordName(t, w int) string { return fmt.Sprintf("topic%03d_w%04d", t, w) }

// Store returns the underlying vocabulary store (also a Model).
func (ts *TopicSpace) Store() *Store { return ts.store }

// Dim returns the embedding dimension.
func (ts *TopicSpace) Dim() int { return ts.store.Dim() }

// Lookup implements Model.
func (ts *TopicSpace) Lookup(word string) (vector.Vector, bool) { return ts.store.Lookup(word) }

// Topics returns the planted topic names in generation order. The
// returned slice must not be modified.
func (ts *TopicSpace) Topics() []string { return ts.topics }

// TopicOf returns the planted topic a vocabulary word belongs to, or ""
// if the word is not part of the space. Topic centroids belong to
// themselves.
func (ts *TopicSpace) TopicOf(word string) string { return ts.topicOf[word] }

// TopicWords returns the k vocabulary words most similar to the named
// topic's centroid (excluding the centroid word itself), mirroring the
// benchmark's "k most similar words to the tag" attribute construction.
func (ts *TopicSpace) TopicWords(topic string, k int) []Neighbor {
	return ts.store.NearestWord(topic, k, true)
}
