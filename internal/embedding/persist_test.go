package embedding

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"lakenav/internal/faultinject"
	"lakenav/vector"
)

func buildTestStore() *Store {
	s := NewStore(3)
	s.Add("alpha", vector.Vector{1, 2, 3})
	s.Add("beta", vector.Vector{-0.5, 0, 0.25})
	s.Add("", vector.Vector{0, 0, 0}) // empty word is legal
	return s
}

func TestStoreRoundTrip(t *testing.T) {
	s := buildTestStore()
	var buf bytes.Buffer
	if _, err := s.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadStore(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Dim() != s.Dim() || got.Len() != s.Len() {
		t.Fatalf("round trip shape mismatch: dim %d/%d len %d/%d", got.Dim(), s.Dim(), got.Len(), s.Len())
	}
	for _, w := range s.Words() {
		want, _ := s.Lookup(w)
		have, ok := got.Lookup(w)
		if !ok || !vector.Equal(want, have, 0) {
			t.Errorf("word %q: got %v want %v (ok=%v)", w, have, want, ok)
		}
	}
}

func TestStoreFileRoundTrip(t *testing.T) {
	s := buildTestStore()
	path := filepath.Join(t.TempDir(), "vecs.bin")
	if err := s.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != s.Len() {
		t.Errorf("Len = %d, want %d", got.Len(), s.Len())
	}
}

func TestReadStoreBadMagic(t *testing.T) {
	if _, err := ReadStore(bytes.NewReader([]byte("NOTMAGIC garbage"))); err == nil {
		t.Error("bad magic accepted")
	}
}

func TestReadStoreTruncated(t *testing.T) {
	s := buildTestStore()
	var buf bytes.Buffer
	if _, err := s.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, cut := range []int{4, 8, 12, 20, len(full) - 1} {
		if cut >= len(full) {
			continue
		}
		if _, err := ReadStore(bytes.NewReader(full[:cut])); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
}

func TestReadStoreImplausibleWordLen(t *testing.T) {
	var buf bytes.Buffer
	buf.Write(storeMagic[:])
	// dim=1, count=1, wordLen=maxWordLen+1
	buf.Write([]byte{1, 0, 0, 0})
	buf.Write([]byte{1, 0, 0, 0})
	buf.Write([]byte{0xFF, 0xFF, 0xFF, 0x7F})
	if _, err := ReadStore(&buf); err == nil {
		t.Error("implausible word length accepted")
	}
}

func TestLoadFileMissing(t *testing.T) {
	if _, err := LoadFile(filepath.Join(t.TempDir(), "nope.bin")); err == nil {
		t.Error("missing file accepted")
	}
}

func TestEmptyStoreRoundTrip(t *testing.T) {
	s := NewStore(4)
	var buf bytes.Buffer
	if _, err := s.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadStore(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 0 || got.Dim() != 4 {
		t.Errorf("empty round trip: len=%d dim=%d", got.Len(), got.Dim())
	}
}

func TestSaveFileToBadPath(t *testing.T) {
	s := buildTestStore()
	if err := s.SaveFile("/nonexistent-dir/x/y.bin"); err == nil {
		t.Error("bad path accepted")
	}
}

// A store file torn mid-write must fail to load, and the atomic save
// must leave no temp files next to the target.
func TestSaveFileAtomicAndTornLoad(t *testing.T) {
	s := buildTestStore()
	dir := t.TempDir()
	path := filepath.Join(dir, "vecs.bin")
	for i := 0; i < 2; i++ { // second save overwrites atomically
		if err := s.SaveFile(path); err != nil {
			t.Fatal(err)
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Errorf("directory has %d entries after save, want 1", len(entries))
	}
	torn := filepath.Join(dir, "torn.bin")
	if err := faultinject.TornCopy(path, torn, 0.5); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadFile(torn); err == nil {
		t.Error("torn store loaded")
	}
}

// A reader failing mid-stream surfaces as an error, not a short store.
func TestReadStoreFailingReader(t *testing.T) {
	s := buildTestStore()
	var buf bytes.Buffer
	if _, err := s.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	fr := &faultinject.FailingReader{R: &buf, N: int64(buf.Len() / 2)}
	if _, err := ReadStore(fr); err == nil {
		t.Error("mid-stream read failure swallowed")
	}
}
