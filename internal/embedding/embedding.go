// Package embedding provides the word-embedding substrate that lakenav's
// navigation model is built on.
//
// The paper (Nargesian et al., SIGMOD 2020, Sec 3.1) represents every
// attribute by a topic vector: the sample mean of the fastText embeddings
// of its values. Pretrained fastText vectors are a proprietary-size
// external artifact, so this package substitutes a deterministic
// *synthetic* embedding space with the same geometry the model consumes:
//
//   - every word maps to a reproducible unit vector (hash-seeded Gaussian),
//     so unrelated words are near-orthogonal in high dimension;
//   - a TopicSpace plants topic centroids with a minimum pairwise
//     separation and generates vocabulary neighbourhoods around them, so
//     words that share a topic have high cosine similarity — exactly the
//     property the TagCloud benchmark construction relies on;
//   - a configurable coverage fraction emulates fastText's ~70% hit rate
//     on open-data text values.
//
// Everything downstream (topic vectors, transition probabilities, success
// probabilities) only ever consumes cosine geometry, so the substitution
// preserves the behaviour the evaluation measures.
package embedding

import (
	"hash/fnv"
	"math/rand"
	"sort"

	"lakenav/vector"
)

// Model is the minimal interface the rest of lakenav needs from an
// embedding source: a word lookup and the embedding dimension.
type Model interface {
	// Lookup returns the embedding of word and true, or nil and false if
	// the word is out of vocabulary.
	Lookup(word string) (vector.Vector, bool)
	// Dim returns the embedding dimension.
	Dim() int
}

// wordSeed derives a stable 64-bit seed from a word and a model seed.
func wordSeed(word string, seed int64) int64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(word)) // hash.Hash.Write never fails
	return int64(h.Sum64()) ^ seed
}

// gaussianUnit fills a fresh unit vector with Gaussian components drawn
// from rng. In high dimension such vectors are nearly orthogonal to each
// other, matching the behaviour of embeddings of unrelated words.
func gaussianUnit(rng *rand.Rand, dim int) vector.Vector {
	v := vector.New(dim)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return vector.Normalize(v)
}

// Hashed is a stateless Model that deterministically embeds any word by
// seeding a Gaussian unit vector from the word's hash. A Coverage
// fraction below 1 declares a deterministic subset of words out of
// vocabulary, emulating the partial coverage of pretrained embeddings.
type Hashed struct {
	dim      int
	seed     int64
	coverage float64
}

// NewHashed returns a Hashed model of the given dimension. coverage must
// be in (0, 1]; words hashing outside the covered fraction report
// out-of-vocabulary.
func NewHashed(dim int, seed int64, coverage float64) *Hashed {
	if dim <= 0 {
		panic("embedding: NewHashed non-positive dim")
	}
	if coverage <= 0 || coverage > 1 {
		panic("embedding: NewHashed coverage outside (0, 1]")
	}
	return &Hashed{dim: dim, seed: seed, coverage: coverage}
}

// Dim returns the embedding dimension.
func (h *Hashed) Dim() int { return h.dim }

// Lookup returns the deterministic embedding of word, or false if word
// falls in the uncovered fraction of the hash space.
func (h *Hashed) Lookup(word string) (vector.Vector, bool) {
	s := wordSeed(word, h.seed)
	if h.coverage < 1 {
		// A second, independent hash decides coverage so that coverage
		// does not correlate with vector direction.
		u := fnv.New64()
		_, _ = u.Write([]byte(word)) // hash.Hash.Write never fails
		_, _ = u.Write([]byte{0xC0})
		frac := float64(u.Sum64()%1_000_000) / 1_000_000
		if frac >= h.coverage {
			return nil, false
		}
	}
	return gaussianUnit(rand.New(rand.NewSource(s)), h.dim), true
}

// Store is an explicit vocabulary: a map from word to embedding vector.
// It is the in-memory equivalent of a pretrained embedding file and
// supports exact nearest-neighbour queries over its vocabulary.
type Store struct {
	dim   int
	words []string
	index map[string]int
	vecs  []vector.Vector
}

// NewStore returns an empty store for dim-dimensional embeddings.
func NewStore(dim int) *Store {
	if dim <= 0 {
		panic("embedding: NewStore non-positive dim")
	}
	return &Store{dim: dim, index: make(map[string]int)}
}

// Dim returns the embedding dimension.
func (s *Store) Dim() int { return s.dim }

// Len returns the vocabulary size.
func (s *Store) Len() int { return len(s.words) }

// Add inserts or replaces the embedding for word. The vector is cloned.
func (s *Store) Add(word string, v vector.Vector) {
	if len(v) != s.dim {
		panic("embedding: Store.Add dimension mismatch")
	}
	if i, ok := s.index[word]; ok {
		s.vecs[i] = v.Clone()
		return
	}
	s.index[word] = len(s.words)
	s.words = append(s.words, word)
	s.vecs = append(s.vecs, v.Clone())
}

// Lookup returns the embedding for word, or false if absent.
func (s *Store) Lookup(word string) (vector.Vector, bool) {
	i, ok := s.index[word]
	if !ok {
		return nil, false
	}
	return s.vecs[i], true
}

// Has reports whether word is in the vocabulary.
func (s *Store) Has(word string) bool {
	_, ok := s.index[word]
	return ok
}

// Words returns the vocabulary in insertion order. The returned slice
// must not be modified.
func (s *Store) Words() []string { return s.words }

// Neighbor is a word together with its cosine similarity to a query.
type Neighbor struct {
	Word       string
	Similarity float64
}

// Nearest returns the k vocabulary words most cosine-similar to query,
// in descending similarity order. Words listed in exclude are skipped.
// Fewer than k neighbours are returned when the vocabulary is small.
func (s *Store) Nearest(query vector.Vector, k int, exclude map[string]bool) []Neighbor {
	if k <= 0 {
		return nil
	}
	out := make([]Neighbor, 0, len(s.words))
	for i, w := range s.words {
		if exclude != nil && exclude[w] {
			continue
		}
		out = append(out, Neighbor{Word: w, Similarity: vector.Cosine(query, s.vecs[i])})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Similarity != out[j].Similarity {
			return out[i].Similarity > out[j].Similarity
		}
		return out[i].Word < out[j].Word
	})
	if len(out) > k {
		out = out[:k]
	}
	return out
}

// NearestWord is a convenience wrapper around Nearest for string queries;
// it returns no neighbours when word is out of vocabulary.
func (s *Store) NearestWord(word string, k int, excludeSelf bool) []Neighbor {
	v, ok := s.Lookup(word)
	if !ok {
		return nil
	}
	var exclude map[string]bool
	if excludeSelf {
		exclude = map[string]bool{word: true}
	}
	return s.Nearest(v, k, exclude)
}
